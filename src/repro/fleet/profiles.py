"""Named fleet profiles and the arrival-to-scenario compiler.

A :class:`FleetProfile` pairs an :class:`~repro.fleet.arrivals.ArrivalProcess`
with the quantisation rules that turn its sampled per-slot offered load into
a :class:`~repro.workloads.dynamics.DynamicScenario` phase timeline: slot
loads become ``(active_cores, activity)`` pairs on a small quantisation
grid, adjacent identical slots merge into one phase, and near-zero slots
become idle gaps (:data:`~repro.workloads.dynamics.AUTO_CSTATE`).

:class:`ScenarioGenerator` is the seeded compiler.  ``compile(seed=s,
member=j)`` samples the profile's arrival process on tree path ``(j,)`` and
is **bit-identical** for fixed ``(profile, seed, member)`` — across
processes, platforms, and ensemble sizes — because each ensemble member
owns its own spawn-key prefix (the same prefix-stability argument as
``DiePopulationSampler.sample_range``).  ``ensemble(seed, count)`` is
therefore prefix-stable: growing *count* never changes earlier members.

Three fleet profiles ship with the library and are registered in
:data:`~repro.workloads.dynamics.SCENARIO_BUILDERS` under the
``fleet-`` prefix at import time:

``datacenter``
    Diurnally-modulated request serving overlaid with a periodic batch
    (cron-like) duty cycle — the classic datacenter day/night utilisation
    curve with background batch load.
``consumer``
    Self-similar ON/OFF interactive bursts over a thin background stream —
    the bursty foreground/idle-gap pattern of consumer devices.
``graphics``
    A frame-rate-locked graphics duty cycle co-scheduled with a Poisson IA
    (CPU) request stream — sustained co-scheduling pressure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_in_range, ensure_positive
from repro.fleet.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    DutyCycleArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.workloads.dynamics import (
    AUTO_CSTATE,
    SCENARIO_BUILDERS,
    DynamicPhase,
    DynamicScenario,
)

#: Registry prefix of fleet-generated scenarios in ``SCENARIO_BUILDERS``.
FLEET_PROFILE_PREFIX = "fleet-"


@dataclass(frozen=True)
class FleetProfile:
    """A named fleet workload: an arrival process plus quantisation rules.

    Parameters
    ----------
    name:
        Profile name (registered as ``fleet-<name>``).
    arrivals:
        The seeded arrival process generating offered load.
    slot_s:
        Compilation slot width; each sampled slot becomes (part of) one
        timeline phase.
    max_cores:
        Core-count ceiling of the compiled phases.
    base_activity:
        Cdyn activity of a fully-loaded core; partial slot utilisation
        scales it down on the quantisation grid.
    memory_intensity:
        Memory-traffic intensity of every active phase.
    idle_threshold:
        Slot loads below this compile to idle gaps.
    activity_levels:
        Size of the per-core utilisation quantisation grid (coarser grids
        merge more aggressively into fewer phases).
    time_step_s:
        Simulation step of the compiled scenarios.
    pl2_ratio:
        Burst power limit of the compiled scenarios (multiple of TDP).
    """

    name: str
    arrivals: ArrivalProcess
    slot_s: float = 5.0
    max_cores: int = 4
    base_activity: float = 0.62
    memory_intensity: float = 0.2
    idle_threshold: float = 0.05
    activity_levels: int = 8
    time_step_s: float = 0.1
    pl2_ratio: float = 1.25

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile name must be a non-empty string")
        if not isinstance(self.arrivals, ArrivalProcess):
            raise ConfigurationError(
                "arrivals must be an arrival process, got "
                f"{type(self.arrivals).__name__}"
            )
        ensure_positive(self.slot_s, "slot_s")
        if self.max_cores < 1:
            raise ConfigurationError("max_cores must be >= 1")
        ensure_in_range(self.base_activity, 0.0, 1.0, "base_activity")
        ensure_in_range(self.memory_intensity, 0.0, 1.0, "memory_intensity")
        ensure_in_range(self.idle_threshold, 0.0, 1.0, "idle_threshold")
        if self.activity_levels < 1:
            raise ConfigurationError("activity_levels must be >= 1")
        ensure_positive(self.time_step_s, "time_step_s")
        if self.pl2_ratio < 1.0:
            raise ConfigurationError("pl2_ratio must be >= 1.0")

    @property
    def scenario_name(self) -> str:
        """The registry name of this profile's scenarios."""
        return f"{FLEET_PROFILE_PREFIX}{self.name}"

    def quantize(self, load: float) -> Tuple[int, float]:
        """Map one slot's offered load to ``(active_cores, activity)``.

        Loads below :attr:`idle_threshold` are idle ``(0, 0.0)``.  Otherwise
        the load claims ``ceil(load)`` cores (capped at :attr:`max_cores`)
        and the per-core utilisation is quantised **up** onto the
        ``activity_levels`` grid, scaling :attr:`base_activity`.
        """
        if load < self.idle_threshold:
            return 0, 0.0
        cores = min(self.max_cores, max(1, math.ceil(load - 1e-9)))
        utilisation = min(1.0, load / cores)
        level = math.ceil(utilisation * self.activity_levels - 1e-9)
        activity = self.base_activity * level / self.activity_levels
        return cores, min(1.0, activity)


@dataclass(frozen=True)
class ScenarioGenerator:
    """The seeded fleet-profile compiler.

    For a fixed ``(profile, seed, member)`` triple, :meth:`compile` is
    bit-identical everywhere: the arrival draw happens on the member's own
    spawn-key prefix ``(member,)`` and the quantisation is pure arithmetic.
    """

    profile: FleetProfile

    def __post_init__(self) -> None:
        if not isinstance(self.profile, FleetProfile):
            raise ConfigurationError(
                f"profile must be a FleetProfile, got {type(self.profile).__name__}"
            )

    def compile(self, seed: int = 0, member: int = 0) -> DynamicScenario:
        """Compile ensemble member *member* of the profile under *seed*."""
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ConfigurationError(f"seed must be an int >= 0, got {seed!r}")
        if not isinstance(member, int) or isinstance(member, bool) or member < 0:
            raise ConfigurationError(f"member must be an int >= 0, got {member!r}")
        profile = self.profile
        loads = profile.arrivals.sample_load(
            profile.slot_s, seed, key=(member,)
        )
        phases = self._phases(loads)
        return DynamicScenario(
            name=f"{profile.scenario_name}#s{seed}m{member}",
            phases=phases,
            time_step_s=profile.time_step_s,
            pl2_ratio=profile.pl2_ratio,
        )

    def ensemble(self, seed: int = 0, count: int = 1) -> Tuple[DynamicScenario, ...]:
        """Compile ensemble members ``0..count-1`` under *seed*.

        Prefix-stable: ``ensemble(seed, n)[:k] == ensemble(seed, k)`` for
        any ``k <= n`` — member *j* depends only on ``(profile, seed, j)``.
        """
        if count < 1:
            raise ConfigurationError("count must be >= 1")
        return tuple(self.compile(seed=seed, member=j) for j in range(count))

    def _phases(self, loads) -> Tuple[DynamicPhase, ...]:
        profile = self.profile
        # Merge runs of slots that quantise identically into single phases.
        runs: List[Tuple[int, float, int]] = []
        for load in loads:
            cores, activity = profile.quantize(float(load))
            if runs and runs[-1][0] == cores and runs[-1][1] == activity:
                cores_, activity_, count = runs[-1]
                runs[-1] = (cores_, activity_, count + 1)
            else:
                runs.append((cores, activity, 1))
        phases: List[DynamicPhase] = []
        for index, (cores, activity, count) in enumerate(runs):
            duration_s = count * profile.slot_s
            if cores == 0:
                phases.append(
                    DynamicPhase(
                        name=f"idle{index}",
                        duration_s=duration_s,
                        package_cstate=AUTO_CSTATE,
                    )
                )
            else:
                phases.append(
                    DynamicPhase(
                        name=f"load{index}",
                        duration_s=duration_s,
                        active_cores=cores,
                        activity=activity,
                        memory_intensity=profile.memory_intensity,
                    )
                )
        return tuple(phases)


# -- named profiles ---------------------------------------------------------------------


def datacenter_profile(**overrides) -> FleetProfile:
    """Datacenter serving: diurnal request curve plus periodic batch load.

    One compressed "day" (240 s) of diurnally-modulated Poisson request
    serving, overlaid with a cron-like batch duty cycle that claims a full
    core 30% of every minute.
    """
    serving = DiurnalArrivals(
        duration_s=240.0,
        rate_hz=6.0,
        amplitude=0.7,
        period_s=240.0,
        phase=0.75,
        request_load=0.3,
    )
    batch = DutyCycleArrivals(
        duration_s=240.0, period_s=60.0, on_fraction=0.3, load=1.0
    )
    arrivals = serving.overlay(batch)
    return FleetProfile(name="datacenter", arrivals=arrivals, **overrides)


def consumer_interactive_profile(**overrides) -> FleetProfile:
    """Consumer interactive: heavy-tailed ON/OFF bursts over a thin stream.

    Self-similar foreground bursts (taps, scrolls, app launches) riding a
    low-rate background service stream; long OFF sojourns open idle gaps
    that exercise package C-state entry and turbo re-banking.
    """
    foreground = OnOffArrivals(
        duration_s=180.0,
        mean_on_s=4.0,
        mean_off_s=12.0,
        alpha=1.5,
        on_load=3.0,
    )
    background = PoissonArrivals(
        duration_s=180.0, rate_hz=0.6, request_load=0.2
    )
    arrivals = foreground.overlay(background)
    overrides.setdefault("slot_s", 2.0)
    return FleetProfile(name="consumer", arrivals=arrivals, **overrides)


def graphics_coschedule_profile(**overrides) -> FleetProfile:
    """Graphics + IA co-scheduling: frame duty cycle plus request serving.

    A frame-rate-locked rendering duty cycle (two cores, 60% duty) runs
    co-scheduled with a Poisson IA request stream — sustained multi-core
    pressure with periodic relief, the co-scheduling mix whose throttling
    the paper's gated design must not worsen.
    """
    frames = DutyCycleArrivals(
        duration_s=200.0, period_s=20.0, on_fraction=0.6, load=2.0
    )
    requests = PoissonArrivals(
        duration_s=200.0, rate_hz=3.0, request_load=0.35
    )
    arrivals = frames.overlay(requests)
    overrides.setdefault("slot_s", 4.0)
    return FleetProfile(name="graphics", arrivals=arrivals, **overrides)


#: Name -> profile factory for every canonical fleet profile.
_PROFILE_FACTORIES: Dict[str, Callable[..., FleetProfile]] = {
    "datacenter": datacenter_profile,
    "consumer": consumer_interactive_profile,
    "graphics": graphics_coschedule_profile,
}


def fleet_profile_names() -> List[str]:
    """The names :func:`fleet_profile` accepts, sorted."""
    return sorted(_PROFILE_FACTORIES)


def fleet_profile(name: str, **overrides) -> FleetProfile:
    """Build a canonical fleet profile by name.

    Accepts the bare profile name (``"datacenter"``) or the registry form
    (``"fleet-datacenter"``); *overrides* replace :class:`FleetProfile`
    fields (``slot_s=2.0``, ``max_cores=8``, ...).
    """
    if name.startswith(FLEET_PROFILE_PREFIX):
        name = name[len(FLEET_PROFILE_PREFIX):]
    factory = _PROFILE_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown fleet profile {name!r}; known profiles: "
            f"{', '.join(fleet_profile_names())}"
        )
    return factory(**overrides)


def _make_builder(profile_name: str) -> Callable[..., DynamicScenario]:
    def builder(
        seed: int = 0, member: int = 0, **overrides
    ) -> DynamicScenario:
        profile = fleet_profile(profile_name, **overrides)
        return ScenarioGenerator(profile).compile(seed=seed, member=member)

    builder.__name__ = f"fleet_{profile_name}_scenario"
    builder.__doc__ = (
        f"Ensemble member *member* of the {profile_name!r} fleet profile "
        "under *seed*."
    )
    return builder


def register_fleet_profiles() -> None:
    """Register every canonical fleet profile in ``SCENARIO_BUILDERS``.

    Runs at :mod:`repro.fleet` import time and is idempotent; afterwards
    ``build_scenario("fleet-datacenter", seed=7, member=2)`` compiles the
    same scenario as the library API.
    """
    for profile_name in _PROFILE_FACTORIES:
        SCENARIO_BUILDERS.setdefault(
            f"{FLEET_PROFILE_PREFIX}{profile_name}", _make_builder(profile_name)
        )


register_fleet_profiles()
