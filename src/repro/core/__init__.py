"""DarkGates: the paper's contribution, packaged as the library's core API.

The rest of the library provides substrates (PDN, power, SoC, firmware,
workloads, simulation); this package assembles them into the systems the
paper evaluates and exposes the comparison API a user actually wants:

* :class:`SystemSpec` — a declarative, frozen description of one system
  (SKU, segment, TDP, power-delivery mode, deepest package C-state,
  guardband options) with ``.build()``, ``.variant()``, and a registry of
  the named configurations the paper evaluates (``get_spec("darkgates")``,
  ``get_spec("baseline")``, ``get_spec("darkgates+c7")``, and the Broadwell
  motivation configs).
* :class:`SystemComparison` — runs the same workload on the DarkGates and
  baseline systems and reports the improvement/degradation numbers of
  Figs. 7-10.
* :mod:`repro.core.overhead` — the implementation-cost accounting of
  Section 5.

The legacy factory trio (:func:`darkgates_system`, :func:`baseline_system`,
:func:`darkgates_c7_limited_system`) remains as deprecated shims over the
spec registry.
"""

from repro.core.darkgates import (
    SystemComparison,
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)
from repro.core.overhead import ImplementationOverheads, darkgates_overheads
from repro.core.spec import (
    SKU_BUILDERS,
    SystemSpec,
    build_engine,
    get_spec,
    register_spec,
    resolve_spec,
    spec_names,
)

__all__ = [
    "SystemComparison",
    "SystemSpec",
    "SKU_BUILDERS",
    "build_engine",
    "get_spec",
    "register_spec",
    "resolve_spec",
    "spec_names",
    "baseline_system",
    "darkgates_c7_limited_system",
    "darkgates_system",
    "ImplementationOverheads",
    "darkgates_overheads",
]
