"""DarkGates: the paper's contribution, packaged as the library's core API.

The rest of the library provides substrates (PDN, power, SoC, firmware,
workloads, simulation); this package assembles them into the systems the
paper evaluates and exposes the comparison API a user actually wants:

* :func:`darkgates_system` — a Skylake-S desktop with power-gates bypassed,
  bypass-mode firmware, the reliability guardband adjustment, and package C8.
* :func:`baseline_system` — the Skylake-H-style baseline with power-gates
  enabled and package C7.
* :class:`SystemComparison` — runs the same workload on both systems and
  reports the improvement/degradation numbers of Figs. 7-10.
* :mod:`repro.core.overhead` — the implementation-cost accounting of
  Section 5.
"""

from repro.core.darkgates import (
    SystemComparison,
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)
from repro.core.overhead import ImplementationOverheads, darkgates_overheads

__all__ = [
    "SystemComparison",
    "baseline_system",
    "darkgates_c7_limited_system",
    "darkgates_system",
    "ImplementationOverheads",
    "darkgates_overheads",
]
