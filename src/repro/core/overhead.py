"""Implementation-cost accounting (paper Section 5).

DarkGates' hardware cost is deliberately tiny: the two packages already
exist for the two market segments, the firmware grows by ~0.3 KB (<0.004 %
of the Skylake die area), and the package-C8 flows already exist for mobile
parts.  The only sizeable silicon cost in the whole scheme is the one the
*baseline* pays: the per-core power-gates themselves (>5 % of core area).
This module exposes those numbers so tests and reports can check them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pmu.fuses import DARKGATES_FIRMWARE_BYTES, firmware_area_overhead_fraction
from repro.soc.die import Die, skylake_client_die


@dataclass(frozen=True)
class ImplementationOverheads:
    """The overhead numbers reported in Section 5."""

    firmware_bytes: int
    firmware_die_area_fraction: float
    power_gate_core_area_fraction: float
    power_gate_die_area_fraction: float
    requires_new_package: bool

    @property
    def firmware_area_below_claim(self) -> bool:
        """True when the firmware area overhead is below the paper's 0.004 %."""
        return self.firmware_die_area_fraction < 0.00004


def darkgates_overheads(die: Die | None = None) -> ImplementationOverheads:
    """Compute the implementation overheads for a die (Skylake by default)."""
    target = die or skylake_client_die()
    core = target.cores[0]
    return ImplementationOverheads(
        firmware_bytes=DARKGATES_FIRMWARE_BYTES,
        firmware_die_area_fraction=firmware_area_overhead_fraction(target.area_mm2),
        power_gate_core_area_fraction=core.power_gate_area_overhead(),
        power_gate_die_area_fraction=target.power_gate_die_area_fraction(),
        requires_new_package=False,
    )
