"""Declarative system specifications.

A :class:`SystemSpec` is a frozen, hashable, JSON-serialisable description
of one evaluated system: which SKU it is, its market segment, TDP
configuration, power-delivery mode, deepest package C-state, and guardband
options.  ``spec.build()`` assembles the corresponding firmware-configured
system (:class:`~repro.pmu.pcode.Pcode`); ``spec.variant(...)`` derives new
configurations; and a small registry names the configurations the paper
evaluates so that experiments can say ``get_spec("darkgates")`` instead of
calling hardcoded factory functions.

Registered names:

* ``"darkgates"`` — Skylake-S, power-gates bypassed, package C8, Section 4.2
  reliability guardband.
* ``"baseline"`` — Skylake-H, power-gates enabled, package C7.
* ``"darkgates+c7"`` — the Fig. 10 ablation: bypassed but limited to C7.
* ``"broadwell-baseline"`` — the gated Broadwell part of the Fig. 3
  motivation experiment.
* ``"broadwell-100mv"`` — the same part with a flat -100 mV guardband
  reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from functools import lru_cache
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.common.validation import ensure_positive
from repro.pdn.guardband import GuardbandModel, OffsetGuardbandModel
from repro.pmu.fuses import FuseSet, PowerDeliveryMode
from repro.pmu.pcode import Pcode
from repro.reliability.guardband import ReliabilityGuardbandModel
from repro.sim.engine import SimulationEngine
from repro.soc.processor import Processor
from repro.soc.skus import broadwell_desktop, skylake_h_mobile, skylake_s_desktop
from repro.variation.sampler import DieVariation

#: SKU name -> builder of the corresponding processor at a TDP level.
SKU_BUILDERS: Dict[str, Callable[[float], Processor]] = {
    "skylake-s": skylake_s_desktop,
    "skylake-h": skylake_h_mobile,
    "broadwell": broadwell_desktop,
}


@dataclass(frozen=True)
class SystemSpec:
    """Declarative description of one evaluated system configuration.

    Parameters
    ----------
    name:
        Human-readable configuration name (registry key for named specs).
    sku:
        Hardware SKU: one of :data:`SKU_BUILDERS` (``"skylake-s"``,
        ``"skylake-h"``, ``"broadwell"``).
    segment:
        Market segment recorded in the fuse set (informational).
    tdp_w:
        TDP configuration (the evaluation sweeps 35 - 91 W).
    power_delivery:
        ``PowerDeliveryMode.BYPASS`` (DarkGates) or ``NORMAL`` (gated);
        a plain ``"bypass"`` / ``"normal"`` string is accepted and coerced.
    deepest_package_cstate:
        Deepest package C-state the platform is validated for.
    apply_reliability_guardband:
        Apply the Section 4.2 reliability margin in bypass mode.
    guardband_offset_v:
        Flat offset added to the PDN guardband (the Fig. 3 motivation
        experiment uses -0.100 V); 0 leaves the guardband untouched.
    die_variation:
        Optional :class:`~repro.variation.sampler.DieVariation` describing
        a specific (non-nominal) die of this SKU; ``None`` builds the
        nominal part.  Population samplers materialise their reference
        path as one variant per sampled die through this field.
    """

    name: str
    sku: str = "skylake-s"
    segment: str = "desktop"
    tdp_w: float = 91.0
    power_delivery: PowerDeliveryMode = PowerDeliveryMode.BYPASS
    deepest_package_cstate: str = "C8"
    apply_reliability_guardband: bool = True
    guardband_offset_v: float = 0.0
    die_variation: Optional[DieVariation] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("spec name must be a non-empty string")
        if self.sku not in SKU_BUILDERS:
            raise ConfigurationError(
                f"unknown sku {self.sku!r}; known: {sorted(SKU_BUILDERS)}"
            )
        ensure_positive(self.tdp_w, "tdp_w")
        if isinstance(self.die_variation, Mapping):
            object.__setattr__(
                self, "die_variation", DieVariation.from_dict(self.die_variation)
            )
        if isinstance(self.power_delivery, str):
            try:
                mode = PowerDeliveryMode(self.power_delivery)
            except ValueError:
                raise ConfigurationError(
                    f"unknown power-delivery mode {self.power_delivery!r}"
                ) from None
            object.__setattr__(self, "power_delivery", mode)
        # Validates the C-state name eagerly (FuseSet raises on bad names).
        self.fuses()

    # -- derived views -----------------------------------------------------------------

    @property
    def bypass_enabled(self) -> bool:
        """True when this spec describes a DarkGates bypass-mode system."""
        return self.power_delivery is PowerDeliveryMode.BYPASS

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"darkgates@91W"``."""
        return f"{self.name}@{self.tdp_w:g}W"

    def fuses(self) -> FuseSet:
        """The fuse set this spec programs."""
        return FuseSet(
            power_delivery_mode=self.power_delivery,
            deepest_package_cstate=self.deepest_package_cstate,
            segment=self.segment,
        )

    # -- derivation --------------------------------------------------------------------

    def variant(self, **overrides: Any) -> "SystemSpec":
        """A copy of this spec with some fields overridden."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SystemSpec field(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        return replace(self, **overrides)

    # -- construction ------------------------------------------------------------------

    def reliability_margin_v(self) -> float:
        """The Section 4.2 reliability margin this spec applies."""
        if not (self.bypass_enabled and self.apply_reliability_guardband):
            return 0.0
        return ReliabilityGuardbandModel().margin_for_tdp(self.tdp_w)

    def build(self) -> Pcode:
        """Assemble the firmware-configured system this spec describes."""
        processor = SKU_BUILDERS[self.sku](self.tdp_w)
        if self.die_variation is not None:
            processor = replace(
                processor,
                thermal_resistance_scale=self.die_variation.thermal_resistance_scale,
            )
        margin = self.reliability_margin_v()
        guardband_model = None
        if self.guardband_offset_v != 0.0:
            guardband_model = OffsetGuardbandModel(
                GuardbandModel(
                    configuration=processor.package.pdn,
                    reliability_margin_v=margin,
                ),
                offset_v=self.guardband_offset_v,
            )
        return Pcode(
            processor=processor,
            fuses=self.fuses(),
            reliability_margin_v=margin,
            guardband_model=guardband_model,
            die_variation=self.die_variation,
        )

    # -- serialisation -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload describing this spec."""
        return {
            "name": self.name,
            "sku": self.sku,
            "segment": self.segment,
            "tdp_w": self.tdp_w,
            "power_delivery": self.power_delivery.value,
            "deepest_package_cstate": self.deepest_package_cstate,
            "apply_reliability_guardband": self.apply_reliability_guardband,
            "guardband_offset_v": self.guardband_offset_v,
            "die_variation": (
                self.die_variation.to_dict()
                if self.die_variation is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemSpec":
        """Rebuild a spec from a :meth:`to_dict` payload."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SystemSpec field(s) {sorted(unknown)} in payload"
            )
        if "name" not in data:
            raise ConfigurationError("SystemSpec payload is missing 'name'")
        return cls(**dict(data))


@lru_cache(maxsize=None)
def build_engine(spec: SystemSpec) -> SimulationEngine:
    """A simulation engine for *spec*, cached per unique spec.

    Building a system runs an AC sweep of its PDN to derive guardbands, so
    sweep runners share engines between identical specs.  Specs are frozen
    and hashable, which makes them natural cache keys.
    """
    return SimulationEngine(spec.build())


# -- named-spec registry ---------------------------------------------------------------

_REGISTRY: Dict[str, SystemSpec] = {}


def register_spec(spec: SystemSpec, replace_existing: bool = False) -> SystemSpec:
    """Register *spec* under ``spec.name`` and return it."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"spec {spec.name!r} is already registered; "
            "pass replace_existing=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str, **overrides: Any) -> SystemSpec:
    """Look up a registered spec, optionally deriving a variant of it."""
    try:
        spec = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown system spec {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return spec.variant(**overrides) if overrides else spec


def spec_names() -> Tuple[str, ...]:
    """Names of every registered spec, in registration order."""
    return tuple(_REGISTRY)


def resolve_spec(spec: Union[SystemSpec, str]) -> SystemSpec:
    """Pass through a spec, or look a name up in the registry."""
    if isinstance(spec, SystemSpec):
        return spec
    if isinstance(spec, str):
        return get_spec(spec)
    raise ConfigurationError(
        f"expected a SystemSpec or a registered name, got {type(spec).__name__}"
    )


register_spec(
    SystemSpec(
        name="darkgates",
        sku="skylake-s",
        segment="desktop",
        power_delivery=PowerDeliveryMode.BYPASS,
        deepest_package_cstate="C8",
    )
)
register_spec(
    SystemSpec(
        name="baseline",
        sku="skylake-h",
        segment="desktop",
        power_delivery=PowerDeliveryMode.NORMAL,
        deepest_package_cstate="C7",
    )
)
register_spec(
    SystemSpec(
        name="darkgates+c7",
        sku="skylake-s",
        segment="desktop",
        power_delivery=PowerDeliveryMode.BYPASS,
        deepest_package_cstate="C7",
    )
)
register_spec(
    SystemSpec(
        name="broadwell-baseline",
        sku="broadwell",
        segment="desktop",
        tdp_w=65.0,
        power_delivery=PowerDeliveryMode.NORMAL,
        deepest_package_cstate="C7",
    )
)
register_spec(
    SystemSpec(
        name="broadwell-100mv",
        sku="broadwell",
        segment="desktop",
        tdp_w=65.0,
        power_delivery=PowerDeliveryMode.NORMAL,
        deepest_package_cstate="C7",
        guardband_offset_v=-0.100,
    )
)
