"""DarkGates system construction and baseline comparison.

This module is the top of the stack: it compares the exact system
configurations the paper evaluates.  The configurations themselves are
declared in :mod:`repro.core.spec` — ``get_spec("darkgates")``,
``get_spec("baseline")``, and ``get_spec("darkgates+c7")`` — and the legacy
factory trio (:func:`darkgates_system`, :func:`baseline_system`,
:func:`darkgates_c7_limited_system`) remains as thin deprecated shims over
those specs.

Three configurations appear in the evaluation:

* **DarkGates** — Skylake-S (desktop, LGA) package that bypasses the core
  power-gates, firmware fused to bypass mode, package C8 enabled, and the
  small reliability guardband of Section 4.2 applied.
* **Baseline** — the same die in the Skylake-H (mobile, BGA) package with
  power-gates enabled, normal-mode firmware, package C7 (the deepest state
  pre-DarkGates desktops support).
* **DarkGates limited to C7** — the ablation of Fig. 10: bypassed package
  but without the new deep package C-state; it fails the energy-efficiency
  limits, which is precisely why DarkGates needs its third technique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.deprecation import warn_deprecated
from repro.common.errors import ConfigurationError
from repro.core.spec import get_spec
from repro.pmu.pcode import Pcode
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import CpuRunResult, EnergyRunResult, GraphicsRunResult
from repro.workloads.descriptors import CpuWorkload, EnergyScenario, GraphicsWorkload


def darkgates_system(
    tdp_w: float = 91.0, apply_reliability_guardband: bool = True
) -> Pcode:
    """Build the DarkGates desktop system at one TDP configuration.

    .. deprecated:: 1.1
       Use ``get_spec("darkgates").variant(tdp_w=...).build()`` instead.
    """
    warn_deprecated(
        "darkgates_system()",
        'get_spec("darkgates").variant(tdp_w=...).build()',
    )
    return get_spec(
        "darkgates",
        tdp_w=tdp_w,
        apply_reliability_guardband=apply_reliability_guardband,
    ).build()


def darkgates_c7_limited_system(tdp_w: float = 91.0) -> Pcode:
    """DarkGates hardware whose deepest package C-state is limited to C7.

    This is the Fig. 10 reference configuration ("DarkGates+C7"): it shows
    why the third DarkGates technique (package C8 for desktops) is required.

    .. deprecated:: 1.1
       Use ``get_spec("darkgates+c7").variant(tdp_w=...).build()`` instead.
    """
    warn_deprecated(
        "darkgates_c7_limited_system()",
        'get_spec("darkgates+c7").variant(tdp_w=...).build()',
    )
    return get_spec("darkgates+c7", tdp_w=tdp_w).build()


def baseline_system(tdp_w: float = 91.0) -> Pcode:
    """Build the baseline (power-gates enabled, package C7) system.

    .. deprecated:: 1.1
       Use ``get_spec("baseline").variant(tdp_w=...).build()`` instead.
    """
    warn_deprecated(
        "baseline_system()",
        'get_spec("baseline").variant(tdp_w=...).build()',
    )
    return get_spec("baseline", tdp_w=tdp_w).build()


@dataclass(frozen=True)
class CpuComparison:
    """DarkGates-versus-baseline outcome for one CPU workload."""

    workload_name: str
    baseline: CpuRunResult
    darkgates: CpuRunResult

    @property
    def performance_improvement(self) -> float:
        """Fractional performance improvement of DarkGates over the baseline."""
        return self.darkgates.improvement_over(self.baseline)

    @property
    def frequency_improvement(self) -> float:
        """Fractional core-frequency improvement."""
        return self.darkgates.frequency_hz / self.baseline.frequency_hz - 1.0


@dataclass(frozen=True)
class GraphicsComparison:
    """DarkGates-versus-baseline outcome for one graphics workload."""

    workload_name: str
    baseline: GraphicsRunResult
    darkgates: GraphicsRunResult

    @property
    def performance_degradation(self) -> float:
        """Fractional FPS degradation of DarkGates relative to the baseline."""
        return self.darkgates.degradation_from(self.baseline)


@dataclass(frozen=True)
class EnergyComparison:
    """Average-power outcome of one energy scenario across configurations."""

    scenario_name: str
    darkgates_c7: EnergyRunResult
    darkgates_c8: EnergyRunResult
    baseline_c7: EnergyRunResult

    @property
    def darkgates_c8_reduction(self) -> float:
        """Average-power reduction of DarkGates+C8 versus DarkGates+C7."""
        return self.darkgates_c8.reduction_from(self.darkgates_c7)

    @property
    def baseline_c7_reduction(self) -> float:
        """Average-power reduction of the baseline versus DarkGates+C7."""
        return self.baseline_c7.reduction_from(self.darkgates_c7)


class SystemComparison:
    """Runs workloads on the DarkGates and baseline systems and compares them.

    Parameters
    ----------
    tdp_w:
        TDP configuration shared by both systems (the evaluation sweeps
        35 W, 45 W, 65 W, and 91 W).
    """

    def __init__(self, tdp_w: float = 91.0) -> None:
        if tdp_w <= 0:
            raise ConfigurationError("tdp_w must be positive")
        self._tdp_w = tdp_w
        self._darkgates = SimulationEngine(get_spec("darkgates", tdp_w=tdp_w).build())
        self._baseline = SimulationEngine(get_spec("baseline", tdp_w=tdp_w).build())
        self._darkgates_c7 = SimulationEngine(
            get_spec("darkgates+c7", tdp_w=tdp_w).build()
        )

    # -- properties -------------------------------------------------------------------

    @property
    def tdp_w(self) -> float:
        """TDP level of this comparison."""
        return self._tdp_w

    @property
    def darkgates_engine(self) -> SimulationEngine:
        """Engine bound to the DarkGates configuration."""
        return self._darkgates

    @property
    def baseline_engine(self) -> SimulationEngine:
        """Engine bound to the baseline configuration."""
        return self._baseline

    # -- CPU -----------------------------------------------------------------------------

    def compare_cpu(self, workload: CpuWorkload) -> CpuComparison:
        """Compare one CPU workload across the two systems."""
        return CpuComparison(
            workload_name=workload.name,
            baseline=self._baseline.run_cpu_workload(workload),
            darkgates=self._darkgates.run_cpu_workload(workload),
        )

    def compare_cpu_suite(
        self, workloads: Sequence[CpuWorkload]
    ) -> List[CpuComparison]:
        """Compare a whole suite of CPU workloads."""
        return [self.compare_cpu(workload) for workload in workloads]

    def average_cpu_improvement(self, workloads: Sequence[CpuWorkload]) -> float:
        """Average fractional performance improvement over a suite."""
        comparisons = self.compare_cpu_suite(workloads)
        if not comparisons:
            raise ConfigurationError("workload suite is empty")
        return sum(c.performance_improvement for c in comparisons) / len(comparisons)

    # -- graphics -----------------------------------------------------------------------------

    def compare_graphics(self, workload: GraphicsWorkload) -> GraphicsComparison:
        """Compare one graphics workload across the two systems."""
        return GraphicsComparison(
            workload_name=workload.name,
            baseline=self._baseline.run_graphics_workload(workload),
            darkgates=self._darkgates.run_graphics_workload(workload),
        )

    def average_graphics_degradation(
        self, workloads: Sequence[GraphicsWorkload]
    ) -> float:
        """Average fractional FPS degradation over a graphics suite."""
        if not workloads:
            raise ConfigurationError("workload suite is empty")
        comparisons = [self.compare_graphics(w) for w in workloads]
        return sum(c.performance_degradation for c in comparisons) / len(comparisons)

    # -- energy -----------------------------------------------------------------------------

    def compare_energy(self, scenario: EnergyScenario) -> EnergyComparison:
        """Compare an energy scenario across the three Fig. 10 configurations."""
        return EnergyComparison(
            scenario_name=scenario.name,
            darkgates_c7=self._darkgates_c7.run_energy_scenario(scenario),
            darkgates_c8=self._darkgates.run_energy_scenario(scenario),
            baseline_c7=self._baseline.run_energy_scenario(scenario),
        )

    # -- summary ------------------------------------------------------------------------------

    def summary(self) -> Dict[str, str]:
        """One-line descriptions of the compared configurations."""
        return {
            "darkgates": self._darkgates.pcode.describe(),
            "baseline": self._baseline.pcode.describe(),
            "darkgates_c7_limited": self._darkgates_c7.pcode.describe(),
        }
