"""Population study: 10k varied dice binned into SKUs and swept over TDP.

Samples 10,000 dice from the default Skylake process-variation model
(leakage lognormal, correlated with the V/F corner: leaky dice are fast
dice), bins them into the paper's Table 2 parts by single-core Fmax /
leakage / Vmin cutoffs, and steps the whole population through a
burst-then-throttle timeline at every TDP level of the evaluation
(35-91 W) on the batched population fast path — one lockstep numpy run per
cell, no per-die Python objects.

The output shows the two things a population view adds to the paper's
nominal-die story:

* **yield** — what fraction of dice ship as the premium desktop part, the
  mainstream mobile part, or scrap;
* **per-bin spread** — the p5/p95 sustained frequency per bin at each TDP
  level: at 35 W even premium dice are TDP-limited into a narrow band,
  while at 91 W the bins separate cleanly by silicon speed.

Run with::

    python examples/population_binning_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_percent, format_table
from repro.analysis.study import Study
from repro.variation.distributions import skylake_process_variation
from repro.workloads.dynamics import burst_scenario

DICE = 10_000
SEED = 2022
TDP_LEVELS_W = (35.0, 45.0, 65.0, 91.0)


def main() -> None:
    scenario = burst_scenario(
        idle_lead_s=5.0,
        burst_s=20.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.1,
    )
    study = Study.over_population(
        ("darkgates",),
        (scenario,),
        skylake_process_variation(),
        count=DICE,
        tdp_levels_w=TDP_LEVELS_W,
        seed=SEED,
        name="population-binning",
    )
    result = study.run()

    report = result.spec_binning("darkgates").report
    yield_rows = []
    for name in (*report.bin_names, "scrap"):
        quantiles = report.metric_quantiles.get(name)
        yield_rows.append(
            (
                name,
                report.counts[name],
                format_percent(report.yield_fractions[name]),
                f"{quantiles['fmax_hz'][1] / 1e9:.2f} GHz" if quantiles else "-",
                f"{quantiles['leakage_w'][1]:.2f} W" if quantiles else "-",
            )
        )
    print(
        format_table(
            ["bin", "dice", "yield", "median fmax", "median leakage"],
            yield_rows,
            title=f"SKU binning of {DICE} dice (seed {SEED})",
        )
    )
    print()

    spread_rows = []
    for tdp in TDP_LEVELS_W:
        cell = result.cell(f"darkgates@{tdp:g}W", scenario.name)
        by_bin = result.sustained_by_bin(cell, "darkgates")
        for bin_name, (p5, p95) in by_bin.items():
            spread_rows.append(
                (
                    f"{tdp:.0f} W",
                    bin_name,
                    f"{p5:.2f} GHz",
                    f"{p95:.2f} GHz",
                    f"{p95 - p5:.2f} GHz",
                )
            )
    print(
        format_table(
            ["TDP", "bin", "p5 sustained", "p95 sustained", "spread"],
            spread_rows,
            title="Sustained frequency by bin across the TDP sweep",
        )
    )


if __name__ == "__main__":
    main()
