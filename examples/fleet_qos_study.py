"""Fleet QoS study: gated vs bypassed SLO violations across workload mixes.

Compiles seeded scenario ensembles from three fleet workload profiles —
diurnal datacenter serving, bursty consumer interactive, and graphics+IA
co-scheduling — and sweeps them over the paper's two designs at two TDP
levels: ``darkgates`` (bypassed power delivery, deep C8 package idle) and
``baseline`` (gated power delivery, the dark-silicon-constrained part).
Every (design, TDP, profile, ensemble member) run is judged against a
2.6 GHz frequency SLO, and the per-cell verdicts pool into fleet-level
QoS: SLO-violation rate, throttle residency, and the worst-member p99
latency proxy.

The output shows the fleet-level version of the paper's headline: at the
constrained 35 W operating point the gated baseline spends more time
below the SLO (its voltage-regulator losses eat into the power budget),
while at 65 W both designs clear the SLO and the comparison collapses —
dark silicon hurts exactly when power is scarce.

Run with::

    python examples/fleet_qos_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.analysis.study import Study

SPECS = ("darkgates", "baseline")
PROFILES = ("datacenter", "consumer", "graphics")
TDP_LEVELS_W = (35.0, 65.0)
ENSEMBLE = 8
SEED = 2022
SLO_FREQUENCY_HZ = 2.6e9


def main() -> None:
    study = Study.over_fleet(
        SPECS,
        PROFILES,
        ensemble=ENSEMBLE,
        tdp_levels_w=TDP_LEVELS_W,
        slo_frequency_hz=SLO_FREQUENCY_HZ,
        seed=SEED,
        name="fleet-qos",
    )
    result = study.run()

    print(
        result.as_table(
            title=(
                f"Fleet QoS, ensemble={ENSEMBLE}, seed={SEED}, "
                f"SLO={SLO_FREQUENCY_HZ / 1e9:.1f} GHz"
            )
        )
    )
    print()

    # Head-to-head: how much SLO headroom does bypassing buy per mix?
    rows = []
    for tdp in TDP_LEVELS_W:
        for profile in PROFILES:
            bypassed = result.qos(f"darkgates@{tdp:g}W", profile)
            gated = result.qos(f"baseline@{tdp:g}W", profile)
            rows.append(
                (
                    f"{tdp:.0f} W",
                    profile,
                    f"{bypassed.violation_rate:.4f}",
                    f"{gated.violation_rate:.4f}",
                    f"{gated.violation_rate - bypassed.violation_rate:+.4f}",
                    f"{gated.p99_latency_proxy / bypassed.p99_latency_proxy:.3f}x"
                    if bypassed.p99_latency_proxy
                    else "-",
                )
            )
    print(
        format_table(
            [
                "TDP",
                "profile",
                "bypassed viol.",
                "gated viol.",
                "gated - bypassed",
                "p99 ratio",
            ],
            rows,
            title="SLO-violation rate: gated baseline vs bypassed DarkGates",
        )
    )


if __name__ == "__main__":
    main()
