"""Run store walkthrough: a dynamics sweep that is free the second time.

Runs a DarkGates-vs-baseline burst sweep twice through a persistent
:class:`~repro.store.cache.StoreCache`.  The first pass executes every cell
through the simulator and persists one content-addressed artifact directory
per run; the second pass builds an identical study against the same store
and is served entirely from disk — the script asserts it executes **zero**
simulator tasks and returns a bit-identical result.  It then answers a
cross-run question ("darkgates vs baseline at each TDP") straight from the
SQLite index, engine untouched.

The same store drives the command line::

    python -m repro run --spec darkgates --spec baseline --scenario burst \\
        --tdp 35 --tdp 91
    python -m repro summarize --spec darkgates
    python -m repro compare --spec darkgates --spec baseline

Run with::

    python examples/store_cli_study.py

The store lands in ``$REPRO_STORE_DIR`` if set, else a temporary directory
(so the example never pollutes ``~/.repro_store``).
"""

from __future__ import annotations

import os
import tempfile

from repro import RunIndex, RunStore, Study, StoreCache
from repro.analysis.reporting import format_table
from repro.workloads.dynamics import burst_scenario


def run_sweep(root: str) -> Study:
    study = Study.over_dynamics(
        ("darkgates", "baseline"),
        [burst_scenario(idle_lead_s=5.0, burst_s=20.0, time_step_s=0.5)],
        tdp_levels_w=(35.0, 91.0),
        cache=StoreCache(root, seed=7),
        seed=7,
        name="store-example",
    )
    study.run()
    return study


def main() -> None:
    root = os.environ.get("REPRO_STORE_DIR") or tempfile.mkdtemp(
        prefix="repro_store_"
    )

    cold = run_sweep(root)
    print(f"cold pass: {cold.tasks_executed} simulator task(s) executed")

    warm = run_sweep(root)
    print(f"warm pass: {warm.tasks_executed} simulator task(s) executed")
    assert warm.tasks_executed == 0, "warm pass should be pure disk reads"
    assert warm.run().to_json() == cold.run().to_json()

    index = RunIndex(RunStore(root))
    index.rebuild()
    rows = [
        (
            entry["workload_name"],
            f"{entry['tdp_w']:g} W",
            f"{entry['metric_a']:.3f}",
            f"{entry['metric_b']:.3f}",
            f"{entry['ratio']:.4f}",
        )
        for entry in index.compare("darkgates", "baseline", kind="dynamic")
    ]
    print()
    print(
        format_table(
            ["workload", "TDP", "darkgates", "baseline", "ratio"],
            rows,
            title="Served from the index - no engine invocation",
        )
    )
    print()
    print(f"store root: {root} ({len(RunStore(root))} stored run(s))")


if __name__ == "__main__":
    main()
