"""Graphics power budgeting and energy-efficiency compliance.

Part 1 reproduces the Fig. 9 story: on a thermally-limited 35 W desktop the
un-gated idle cores of a DarkGates part eat a slice of the graphics budget
and cost a couple of percent of 3DMark performance; at 45 W and above the
budget is no longer the binding constraint and nothing changes.

Part 2 reproduces the Fig. 10 story: with the gates bypassed, package C7
leaks too much to meet ENERGY STAR / Intel RMT average-power limits, and the
desktop needs the deeper package C8 state (core VR off) to comply.

Both parts run as :class:`Study` grids over the registered system specs.

Run with::

    python examples/graphics_and_energy_budget.py
"""

from __future__ import annotations

from repro import Study, get_spec, three_dmark_suite
from repro.analysis.reporting import format_percent, format_table
from repro.soc.skus import SKYLAKE_TDP_LEVELS_W
from repro.workloads.energy import energy_star_scenario, rmt_scenario


def graphics_budget_study() -> None:
    darkgates = get_spec("darkgates")
    baseline = get_spec("baseline")
    suite = three_dmark_suite()
    grid = Study.over_tdp_levels(
        (darkgates, baseline), SKYLAKE_TDP_LEVELS_W, suite, name="fig9-example"
    ).run()
    rows = []
    for tdp in SKYLAKE_TDP_LEVELS_W:
        dark_spec = darkgates.variant(tdp_w=tdp)
        base_spec = baseline.variant(tdp_w=tdp)
        sample_dark = grid.get(dark_spec, suite[0])
        sample_base = grid.get(base_spec, suite[0])
        losses = [
            grid.get(dark_spec, w).degradation_from(grid.get(base_spec, w))
            for w in suite
        ]
        rows.append(
            (
                f"{tdp:.0f} W",
                f"{sample_base.operating_point.graphics_budget_w:.1f} W",
                f"{sample_dark.operating_point.graphics_budget_w:.1f} W",
                f"{sample_dark.operating_point.idle_cores_power_w:.2f} W",
                format_percent(sum(losses) / len(losses), decimals=2),
            )
        )
    print(
        format_table(
            ["TDP", "baseline gfx budget", "DarkGates gfx budget", "idle-core leakage", "avg 3DMark loss"],
            rows,
            title="Graphics budget under DarkGates (paper Fig. 9)",
        )
    )


def energy_compliance_study() -> None:
    darkgates_c8 = get_spec("darkgates")
    darkgates_c7 = get_spec("darkgates+c7")
    baseline_c7 = get_spec("baseline")
    scenarios = (energy_star_scenario(), rmt_scenario())
    grid = Study(
        (darkgates_c8, darkgates_c7, baseline_c7), scenarios, name="fig10-example"
    ).run()
    rows = []
    for scenario in scenarios:
        c7 = grid.get(darkgates_c7, scenario)
        c8 = grid.get(darkgates_c8, scenario)
        baseline = grid.get(baseline_c7, scenario)
        rows.append(
            (
                scenario.name,
                f"{c7.average_power_w:.2f} W",
                f"{c8.average_power_w:.2f} W",
                f"{baseline.average_power_w:.2f} W",
                f"{scenario.average_power_limit_w:.2f} W",
                "yes" if c8.meets_limit else "no",
            )
        )
    print(
        format_table(
            [
                "scenario",
                "DarkGates+C7 avg",
                "DarkGates+C8 avg",
                "Non-DarkGates+C7 avg",
                "limit",
                "DarkGates passes with C8",
            ],
            rows,
            title="Energy-efficiency compliance (paper Fig. 10)",
        )
    )


def main() -> None:
    graphics_budget_study()
    print()
    energy_compliance_study()


if __name__ == "__main__":
    main()
