"""Graphics power budgeting and energy-efficiency compliance.

Part 1 reproduces the Fig. 9 story: on a thermally-limited 35 W desktop the
un-gated idle cores of a DarkGates part eat a slice of the graphics budget
and cost a couple of percent of 3DMark performance; at 45 W and above the
budget is no longer the binding constraint and nothing changes.

Part 2 reproduces the Fig. 10 story: with the gates bypassed, package C7
leaks too much to meet ENERGY STAR / Intel RMT average-power limits, and the
desktop needs the deeper package C8 state (core VR off) to comply.

Run with::

    python examples/graphics_and_energy_budget.py
"""

from __future__ import annotations

from repro import (
    SystemComparison,
    energy_star_scenario,
    rmt_scenario,
    three_dmark_suite,
)
from repro.analysis.reporting import format_percent, format_table
from repro.soc.skus import SKYLAKE_TDP_LEVELS_W


def graphics_budget_study() -> None:
    rows = []
    for tdp in SKYLAKE_TDP_LEVELS_W:
        comparison = SystemComparison(tdp_w=tdp)
        sample = comparison.compare_graphics(three_dmark_suite()[0])
        average = comparison.average_graphics_degradation(three_dmark_suite())
        rows.append(
            (
                f"{tdp:.0f} W",
                f"{sample.baseline.operating_point.graphics_budget_w:.1f} W",
                f"{sample.darkgates.operating_point.graphics_budget_w:.1f} W",
                f"{sample.darkgates.operating_point.idle_cores_power_w:.2f} W",
                format_percent(average, decimals=2),
            )
        )
    print(
        format_table(
            ["TDP", "baseline gfx budget", "DarkGates gfx budget", "idle-core leakage", "avg 3DMark loss"],
            rows,
            title="Graphics budget under DarkGates (paper Fig. 9)",
        )
    )


def energy_compliance_study() -> None:
    comparison = SystemComparison(tdp_w=91.0)
    rows = []
    for scenario in (energy_star_scenario(), rmt_scenario()):
        result = comparison.compare_energy(scenario)
        rows.append(
            (
                scenario.name,
                f"{result.darkgates_c7.average_power_w:.2f} W",
                f"{result.darkgates_c8.average_power_w:.2f} W",
                f"{result.baseline_c7.average_power_w:.2f} W",
                f"{scenario.average_power_limit_w:.2f} W",
                "yes" if result.darkgates_c8.meets_limit else "no",
            )
        )
    print(
        format_table(
            [
                "scenario",
                "DarkGates+C7 avg",
                "DarkGates+C8 avg",
                "Non-DarkGates+C7 avg",
                "limit",
                "DarkGates passes with C8",
            ],
            rows,
            title="Energy-efficiency compliance (paper Fig. 10)",
        )
    )


def main() -> None:
    graphics_budget_study()
    print()
    energy_compliance_study()


if __name__ == "__main__":
    main()
