"""Power-delivery-network exploration.

Uses the PDN substrate directly (without the firmware layers) to show the
electrical mechanism behind DarkGates:

1. sweeps the impedance of the gated and bypassed networks (paper Fig. 4),
2. simulates a di/dt load step on both and reports the worst-case droop, and
3. converts both into voltage guardbands and the resulting Vmax-limited
   maximum frequency (Fmax) of the core.

Run with::

    python examples/pdn_exploration.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.pdn.ac import ACAnalysis
from repro.pdn.droop import DroopSimulator
from repro.pdn.guardband import GuardbandModel
from repro.pdn.ladder import PdnConfiguration, SkylakePdnBuilder
from repro.pdn.loadline import default_virus_table
from repro.soc.die import SiliconVfCharacter


def main() -> None:
    gated = PdnConfiguration()
    bypassed = gated.with_bypass()
    virus_table = default_virus_table(4)
    silicon = SiliconVfCharacter()
    vmax_v = 1.42

    impedance_rows = []
    droop_rows = []
    guardband_rows = []
    for label, configuration in (("with power-gates", gated), ("bypassed", bypassed)):
        builder = SkylakePdnBuilder(configuration)
        profile = ACAnalysis(builder.build_netlist(), builder.observation_node()).sweep(
            start_hz=1e5, stop_hz=1e8, label=label
        )
        impedance_rows.append(
            (
                label,
                f"{profile.impedance_at(2e5) * 1e3:.2f} mOhm",
                f"{profile.impedance_at(1.4e7) * 1e3:.2f} mOhm",
                f"{profile.peak_magnitude_ohm() * 1e3:.2f} mOhm @ {profile.peak().frequency_hz / 1e6:.0f} MHz",
            )
        )

        droop = DroopSimulator(builder.build_ladder(), nominal_voltage_v=1.1)
        result = droop.simulate_current_step(step_current_a=25.0, duration_s=3e-6)
        droop_rows.append(
            (
                label,
                f"{result.settled_drop_v * 1e3:.1f} mV",
                f"{result.worst_droop_v * 1e3:.1f} mV",
            )
        )

        guardband_model = GuardbandModel(configuration)
        for level in (virus_table.levels[0], virus_table.levels[-1]):
            breakdown = guardband_model.breakdown(level)
            headroom = vmax_v - breakdown.total_v
            fmax_ghz = silicon.max_frequency_for_voltage(headroom) / 1e9
            guardband_rows.append(
                (
                    label,
                    level.name,
                    f"{breakdown.ir_drop_v * 1e3:.0f} mV",
                    f"{breakdown.transient_droop_v * 1e3:.0f} mV",
                    f"{breakdown.total_v * 1e3:.0f} mV",
                    f"{fmax_ghz:.2f} GHz",
                )
            )

    print(format_table(
        ["configuration", "Z @ 200 kHz", "Z @ 14 MHz", "peak"],
        impedance_rows,
        title="Impedance profile (paper Fig. 4)",
    ))
    print()
    print(format_table(
        ["configuration", "settled IR drop", "worst-case droop"],
        droop_rows,
        title="25 A load-step droop at the die",
    ))
    print()
    print(format_table(
        ["configuration", "virus level", "IR guardband", "droop guardband", "total", "Vmax-limited Fmax"],
        guardband_rows,
        title="Guardband and maximum attainable frequency",
    ))


if __name__ == "__main__":
    main()
