"""Inverse queries: solve the paper's design questions instead of sweeping.

Two questions a dense sweep answers only by brute force:

* **Minimum TDP sustaining 3.0 GHz** — the power budget a gated baseline
  needs versus the bypassed DarkGates design for the same sustained clock.
  ``Study.optimize(method="bisect")`` bisects an 82-level TDP grid in
  ~7 probes per system and returns exactly the dense sweep's argmin.
* **Revenue-optimal SKU cutoffs** — where to place the premium bin's Fmax
  cutoff so yield × ASP revenue per die is maximised subject to a total
  yield floor, over a seeded 10k-die process-variation population.  One
  simulator draw; every cutoff combination re-bins in-process.

Run with::

    python examples/optimize_study.py
"""

from __future__ import annotations

from repro.analysis.optimize import Constraint, Objective, OptimizationSpec
from repro.analysis.study import Study
from repro.pmu.dvfs import CpuDemand
from repro.variation.distributions import skylake_process_variation

TARGET_GHZ = 3.0
TDP_GRID = tuple(float(t) for t in range(10, 92))
ACTIVE_CORES = 4

DICE = 10_000
SEED = 2022
ASP = {"premium-desktop": 450.0, "mainstream-mobile": 220.0}
CUTOFF_GRID = tuple(3.8e9 + 0.05e9 * step for step in range(13))  # 3.8-4.4 GHz
MIN_TOTAL_YIELD = 0.90


def min_tdp_query() -> None:
    query = OptimizationSpec(
        name="min-tdp-for-3GHz",
        method="bisect",
        objectives=(Objective("tdp_w", "min"),),
        constraints=(
            Constraint("sustained_frequency_hz", ">=", TARGET_GHZ * 1e9),
        ),
        variables={"tdp_w": TDP_GRID},
    )
    study = Study.optimize(
        ("darkgates", "baseline"),
        query,
        demand=CpuDemand(active_cores=ACTIVE_CORES),
    )
    result = study.run()
    print(result.as_table())
    gated = result.cell("baseline@91W").best.variable("tdp_w")
    bypassed = result.cell("darkgates@91W").best.variable("tdp_w")
    print(
        f"sustaining {TARGET_GHZ:.1f} GHz on {ACTIVE_CORES} cores: "
        f"bypassed needs {bypassed:.0f} W, gated needs {gated:.0f} W "
        f"({study.tasks_total} probes vs {2 * len(TDP_GRID)} dense cells)"
    )
    print()


def cutoff_query() -> None:
    query = OptimizationSpec(
        name="revenue-optimal-cutoff",
        method="cutoff",
        objectives=(Objective("revenue_per_die", "max"),),
        constraints=(Constraint("yield.total", ">=", MIN_TOTAL_YIELD),),
        variables={"premium-desktop": CUTOFF_GRID},
        asp=ASP,
    )
    result = Study.optimize(
        ("darkgates",),
        query,
        variations=skylake_process_variation(),
        count=DICE,
        seed=SEED,
    ).run()
    print(result.as_table())
    best = result.cells[0].best
    print(
        f"{DICE} dice (seed {result.seed}): premium cutoff at "
        f"{best.variable('premium-desktop') / 1e9:.2f} GHz earns "
        f"{best.metric('revenue_per_die'):.2f}/die at "
        f"{best.metric('yield.total'):.1%} total yield "
        f"(premium {best.metric('yield.premium-desktop'):.1%}, "
        f"mobile {best.metric('yield.mainstream-mobile'):.1%})"
    )


def main() -> None:
    min_tdp_query()
    cutoff_query()


if __name__ == "__main__":
    main()
