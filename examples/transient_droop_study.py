"""Transient-droop study: sweep load traces over gated and bypassed PDNs.

Reproduces the paper's droop comparison (Section 2.4.2, Fig. 6) with the
vectorized transient subsystem: the four canonical di/dt events — a
power-gated core waking up, an AVX burst, a staggered multi-core wake, and
a composite wake-then-AVX trace — run over the DarkGates (bypassed) and
baseline (gated) systems through a :class:`~repro.analysis.study.Study`,
showing that the bypassed network droops roughly half as much for every
event.

The same grid also sweeps the integration step to show the exactness of the
piecewise-linear discretization: results barely move when the step changes.

Custom traces compose declaratively::

    from repro import TraceBuilder

    trace = (
        TraceBuilder(initial_current_a=2.0)
        .hold(100e-9)
        .ramp_to(25.0, 5e-9)      # core wakes over 5 ns
        .hold(1e-6)
        .build("my_wake")
    )

Run with::

    python examples/transient_droop_study.py
"""

from __future__ import annotations

from repro import Study, get_spec
from repro.analysis.reporting import format_percent, format_table
from repro.pdn.transients import (
    avx_burst_trace,
    core_wake_trace,
    multi_event_trace,
    staggered_wake_trace,
)


def main() -> None:
    darkgates = get_spec("darkgates")
    baseline = get_spec("baseline")
    traces = (
        core_wake_trace(),
        avx_burst_trace(),
        staggered_wake_trace(),
        multi_event_trace(),
    )

    study = Study.over_transients(
        (darkgates, baseline),
        traces,
        time_steps_s=(0.5e-9,),
        name="fig6_droop",
    )
    grid = study.run()

    rows = []
    for trace in traces:
        gated = grid.get(baseline, trace.name, suite="transients")
        bypassed = grid.get(darkgates, trace.name, suite="transients")
        rows.append(
            (
                trace.name,
                f"{trace.peak_current_a:.0f} A",
                f"{gated.worst_droop_v * 1e3:.1f} mV",
                f"{bypassed.worst_droop_v * 1e3:.1f} mV",
                format_percent(-bypassed.worsening_over(gated)),
            )
        )
    print(
        format_table(
            ["scenario", "peak load", "gated droop", "bypassed droop", "improvement"],
            rows,
            title="Worst-case transient droop, gated vs bypassed (Fig. 6)",
        )
    )
    print()

    # Step-size sensitivity of one scenario (the solver discretization is
    # exact for piecewise-linear loads, so the droop barely moves).
    steps = (0.5e-9, 1e-9, 2e-9)
    sensitivity = Study.over_transients(
        (darkgates,), (core_wake_trace(),), time_steps_s=steps, name="steps"
    ).run()
    rows = []
    for step in steps:
        name = "core_wake" if step == 0.5e-9 else f"core_wake@{step * 1e9:g}ns"
        cell = sensitivity.get(darkgates, name, suite="transients")
        rows.append((f"{step * 1e9:g} ns", f"{cell.worst_droop_v * 1e3:.3f} mV"))
    print(
        format_table(
            ["time step", "worst droop"],
            rows,
            title="Core-wake droop vs integration step (DarkGates)",
        )
    )


if __name__ == "__main__":
    main()
