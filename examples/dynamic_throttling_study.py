"""Dynamic throttling study: the 35 W vs 91 W frequency-over-time contrast.

Steps one sprint-and-throttle timeline — an idle lead that banks turbo
budget, then a long all-core burst — through the closed-loop Pcode dynamics
engine on the baseline system configured to 35 W and to 91 W, swept with
``Study.over_dynamics``.  The traces reproduce the paper's TDP story in the
time domain:

* at **35 W** the burst opens at the PL2-backed turbo frequency, the EWMA of
  package power climbs to PL1 (the TDP), and the firmware decays the clock
  to the TDP-limited sustained frequency — the limiting factor transitions
  to ``tdp``;
* at **91 W** the same timeline never touches the power budget: the clock
  pins at the Vmax-limited frequency from the first step to the last.

Run with::

    python examples/dynamic_throttling_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.analysis.study import Study
from repro.core.spec import get_spec
from repro.workloads.dynamics import burst_scenario

TDP_LEVELS_W = (35.0, 91.0)


def main() -> None:
    baseline = get_spec("baseline")
    scenario = burst_scenario(
        idle_lead_s=20.0,
        burst_s=100.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.1,
    )
    study = Study.over_dynamics(
        (baseline,), (scenario,), tdp_levels_w=TDP_LEVELS_W, name="dynamic-throttling"
    )
    grid = study.run()

    summary_rows = []
    for tdp in TDP_LEVELS_W:
        run = grid.get(baseline.variant(tdp_w=tdp), scenario.name, suite="dynamics")
        summary_rows.append(
            (
                f"{tdp:.0f} W",
                f"{run.peak_frequency_hz / 1e9:.1f} GHz",
                f"{run.sustained_frequency_hz / 1e9:.1f} GHz",
                run.final_limiting_factor,
                f"{run.peak_temperature_c:.1f} C",
                "yes" if run.throttled else "no",
            )
        )
    print(
        format_table(
            ["TDP", "burst freq", "sustained freq", "final limit", "peak Tj", "throttles"],
            summary_rows,
            title="Sprint-and-throttle on the baseline system (paper Sec. 2.1/2.4.1)",
        )
    )

    # Frequency-over-time contrast, sampled every 10 s of the burst.
    trace_rows = []
    runs = {
        tdp: grid.get(baseline.variant(tdp_w=tdp), scenario.name, suite="dynamics")
        for tdp in TDP_LEVELS_W
    }
    for sample_s in range(20, 121, 10):
        row = [f"t={sample_s:>3d} s"]
        for tdp in TDP_LEVELS_W:
            run = runs[tdp]
            index = min(
                range(len(run.times_s)),
                key=lambda i: abs(run.times_s[i] - sample_s),
            )
            frequency = run.frequencies_hz[index]
            limit = run.limiting_factors[index]
            row.append(
                f"{frequency / 1e9:.1f} GHz ({limit})" if frequency else "idle"
            )
        trace_rows.append(row)
    print()
    print(
        format_table(
            ["time", "35 W", "91 W"],
            trace_rows,
            title="Frequency over time: burst decays at 35 W, pins at Vmax at 91 W",
        )
    )


if __name__ == "__main__":
    main()
