"""TDP sweep study: how much DarkGates helps across desktop cTDP levels.

Sweeps the 35 W - 91 W configurable-TDP range of the evaluated desktop and
reports, per level: the achieved single-core and all-core frequencies of the
baseline and DarkGates systems, which limit (Vmax or TDP) stopped each, and
the resulting average SPEC CPU2006 gain in base and rate modes — the data
behind the paper's Fig. 8.

Run with::

    python examples/tdp_sweep_study.py
"""

from __future__ import annotations

from repro import SystemComparison
from repro.analysis.reporting import format_percent, format_table
from repro.pmu.dvfs import CpuDemand
from repro.soc.skus import SKYLAKE_TDP_LEVELS_W
from repro.workloads.spec import spec_cpu2006_base_suite, spec_cpu2006_rate_suite


def main() -> None:
    frequency_rows = []
    gain_rows = []
    for tdp in SKYLAKE_TDP_LEVELS_W:
        comparison = SystemComparison(tdp_w=tdp)
        baseline = comparison.baseline_engine.pcode
        darkgates = comparison.darkgates_engine.pcode

        single = CpuDemand(active_cores=1, activity=0.65)
        all_cores = CpuDemand(active_cores=4, activity=0.65)
        base_point = baseline.resolve_cpu_operating_point(single)
        dark_point = darkgates.resolve_cpu_operating_point(single)
        base_rate_point = baseline.resolve_cpu_operating_point(all_cores)
        dark_rate_point = darkgates.resolve_cpu_operating_point(all_cores)
        frequency_rows.append(
            (
                f"{tdp:.0f} W",
                f"{base_point.frequency_ghz:.1f} -> {dark_point.frequency_ghz:.1f} GHz",
                base_point.limiting_factor.value,
                f"{base_rate_point.frequency_ghz:.1f} -> {dark_rate_point.frequency_ghz:.1f} GHz",
                base_rate_point.limiting_factor.value,
            )
        )

        gain_rows.append(
            (
                f"{tdp:.0f} W",
                format_percent(
                    comparison.average_cpu_improvement(spec_cpu2006_base_suite())
                ),
                format_percent(
                    comparison.average_cpu_improvement(spec_cpu2006_rate_suite(4))
                ),
            )
        )

    print(
        format_table(
            ["TDP", "1-core freq (base -> DG)", "1-core limit", "4-core freq (base -> DG)", "4-core limit"],
            frequency_rows,
            title="Achieved frequencies across the cTDP range",
        )
    )
    print()
    print(
        format_table(
            ["TDP", "SPEC base gain", "SPEC rate gain"],
            gain_rows,
            title="Average SPEC CPU2006 improvement (paper Fig. 8)",
        )
    )


if __name__ == "__main__":
    main()
