"""TDP sweep study: how much DarkGates helps across desktop cTDP levels.

Sweeps the 35 W - 91 W configurable-TDP range of the evaluated desktop with
one declarative :class:`Study` grid — DarkGates and baseline specs x four
TDP levels x SPEC CPU2006 in base and rate mode, fanned out over a process
pool — and reports, per level: the achieved single-core and all-core
frequencies of both systems, which limit (Vmax or TDP) stopped each, and
the resulting average SPEC gain in each mode — the data behind the paper's
Fig. 8.

Run with::

    python examples/tdp_sweep_study.py
"""

from __future__ import annotations

from repro import Study, get_spec
from repro.analysis.reporting import format_percent, format_table
from repro.pmu.dvfs import CpuDemand
from repro.soc.skus import SKYLAKE_TDP_LEVELS_W
from repro.workloads.spec import spec_cpu2006_base_suite, spec_cpu2006_rate_suite


def main() -> None:
    darkgates = get_spec("darkgates")
    baseline = get_spec("baseline")
    suites = {
        "base": spec_cpu2006_base_suite(),
        "rate": spec_cpu2006_rate_suite(4),
    }
    study = Study.over_tdp_levels(
        (darkgates, baseline),
        SKYLAKE_TDP_LEVELS_W,
        suites,
        executor="process",
        name="tdp-sweep",
    )
    grid = study.run()

    frequency_rows = []
    gain_rows = []
    for tdp in SKYLAKE_TDP_LEVELS_W:
        dark_spec = darkgates.variant(tdp_w=tdp)
        base_spec = baseline.variant(tdp_w=tdp)
        base_pcode = base_spec.build()
        dark_pcode = dark_spec.build()

        single = CpuDemand(active_cores=1, activity=0.65)
        all_cores = CpuDemand(active_cores=4, activity=0.65)
        base_point = base_pcode.resolve_cpu_operating_point(single)
        dark_point = dark_pcode.resolve_cpu_operating_point(single)
        base_rate_point = base_pcode.resolve_cpu_operating_point(all_cores)
        dark_rate_point = dark_pcode.resolve_cpu_operating_point(all_cores)
        frequency_rows.append(
            (
                f"{tdp:.0f} W",
                f"{base_point.frequency_ghz:.1f} -> {dark_point.frequency_ghz:.1f} GHz",
                base_point.limiting_factor.value,
                f"{base_rate_point.frequency_ghz:.1f} -> {dark_rate_point.frequency_ghz:.1f} GHz",
                base_rate_point.limiting_factor.value,
            )
        )

        averages = {}
        for mode, suite in suites.items():
            gains = [
                grid.get(dark_spec, w, suite=mode).improvement_over(
                    grid.get(base_spec, w, suite=mode)
                )
                for w in suite
            ]
            averages[mode] = sum(gains) / len(gains)
        gain_rows.append(
            (
                f"{tdp:.0f} W",
                format_percent(averages["base"]),
                format_percent(averages["rate"]),
            )
        )

    print(
        format_table(
            ["TDP", "1-core freq (base -> DG)", "1-core limit", "4-core freq (base -> DG)", "4-core limit"],
            frequency_rows,
            title="Achieved frequencies across the cTDP range",
        )
    )
    print()
    print(
        format_table(
            ["TDP", "SPEC base gain", "SPEC rate gain"],
            gain_rows,
            title="Average SPEC CPU2006 improvement (paper Fig. 8)",
        )
    )
    print()
    print(f"({study.tasks_executed} engine runs through the process pool)")


if __name__ == "__main__":
    main()
