"""Quickstart: compare a DarkGates desktop against the gated baseline.

Declares the two systems the paper evaluates as named specs
(``get_spec("darkgates")`` — Skylake-S with power-gates bypassed — and
``get_spec("baseline")`` — Skylake-H with power-gates enabled), sweeps a
handful of SPEC CPU2006 benchmarks over both with a :class:`Study`, and
prints the per-benchmark and average performance improvement — the headline
result of the paper.

Migration note (1.0 -> 1.1):

* ``darkgates_system(tdp)``  ->  ``get_spec("darkgates", tdp_w=tdp).build()``
* ``baseline_system(tdp)``   ->  ``get_spec("baseline", tdp_w=tdp).build()``
* ``engine.run_cpu_workload(w)`` (and friends)  ->  ``engine.run(w)``
* hand-rolled sweep loops    ->  ``Study(specs, workloads).run()``

New in 1.2: transient droop scenarios are a first-class workload class —
``engine.run(TransientScenario.from_trace(core_wake_trace()))`` simulates a
di/dt event on the system's PDN with the vectorized droop solver, and
``Study.over_transients(specs, traces)`` sweeps PDN configuration x trace x
time step (see ``examples/transient_droop_study.py``).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Study, get_spec, spec_cpu2006_base_suite
from repro.analysis.reporting import format_percent, format_table


def main() -> None:
    darkgates = get_spec("darkgates")
    baseline = get_spec("baseline")

    print("Configurations under comparison")
    for spec in (darkgates, baseline):
        print(f"  {spec.label:22s} {spec.build().describe()}")
    print()

    suite = spec_cpu2006_base_suite()
    grid = Study((darkgates, baseline), suite, name="quickstart").run()

    rows = []
    improvements = []
    for workload in suite:
        after = grid.get(darkgates, workload)
        before = grid.get(baseline, workload)
        improvements.append(after.improvement_over(before))
        rows.append(
            (
                workload.name,
                f"{before.frequency_hz / 1e9:.1f} GHz",
                f"{after.frequency_hz / 1e9:.1f} GHz",
                format_percent(improvements[-1]),
            )
        )

    print(
        format_table(
            ["benchmark", "baseline freq", "DarkGates freq", "improvement"],
            rows,
            title="SPEC CPU2006 (base) at 91 W TDP",
        )
    )
    average = sum(improvements) / len(improvements)
    print()
    print(f"Average improvement: {format_percent(average)} "
          f"(paper reports 4.6% on real silicon)")


if __name__ == "__main__":
    main()
