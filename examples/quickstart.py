"""Quickstart: compare a DarkGates desktop against the gated baseline.

Builds the two systems the paper evaluates (Skylake-S with power-gates
bypassed versus Skylake-H with power-gates enabled), runs a handful of SPEC
CPU2006 benchmarks on both, and prints the per-benchmark and average
performance improvement — the headline result of the paper.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SystemComparison, spec_cpu2006_base_suite
from repro.analysis.reporting import format_percent, format_table


def main() -> None:
    comparison = SystemComparison(tdp_w=91.0)

    print("Configurations under comparison")
    for name, description in comparison.summary().items():
        print(f"  {name:22s} {description}")
    print()

    suite = spec_cpu2006_base_suite()
    rows = []
    for workload in suite:
        result = comparison.compare_cpu(workload)
        rows.append(
            (
                workload.name,
                f"{result.baseline.frequency_hz / 1e9:.1f} GHz",
                f"{result.darkgates.frequency_hz / 1e9:.1f} GHz",
                format_percent(result.performance_improvement),
            )
        )

    print(
        format_table(
            ["benchmark", "baseline freq", "DarkGates freq", "improvement"],
            rows,
            title="SPEC CPU2006 (base) at 91 W TDP",
        )
    )
    average = comparison.average_cpu_improvement(suite)
    print()
    print(f"Average improvement: {format_percent(average)} "
          f"(paper reports 4.6% on real silicon)")


if __name__ == "__main__":
    main()
