"""Setuptools entry point.

The project metadata lives in ``setup.cfg``; this file exists so that
``pip install -e .`` works in offline environments whose packaging toolchain
lacks the ``wheel`` package (legacy editable installs go through
``setup.py develop`` and do not need to build a wheel or download build
dependencies).
"""

from setuptools import setup

setup()
