"""Inverse queries: ``Study.optimize`` against brute-force oracles.

The solvers earn their keep only if they are *exact*: on a discrete grid,
bisection must return precisely the point a dense sweep's argmin would,
the cutoff scan must match a hand-rolled nested loop over
:class:`~repro.variation.binning.BinningPolicy` reports bit for bit, and
the Pareto frontier must contain exactly the non-dominated feasible
points.  These tests pin that contract — through the serial and
process-pool executors and through a warm run store that must execute
zero simulator tasks — plus the declarative-spec validation, the
actionable infeasibility errors, the unified ``SweepRequest`` keyword
handling, and the JSON round trip of every result.
"""

from __future__ import annotations

import dataclasses
import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.optimize import (
    Constraint,
    Objective,
    OptimizationResult,
    OptimizationSpec,
    OptimizationStudy,
)
from repro.analysis.study import Study, SweepRequest
from repro.common.errors import ConfigurationError
from repro.core.spec import build_engine, resolve_spec
from repro.pmu.dvfs import CpuDemand
from repro.store.artifacts import RunStore
from repro.store.cache import StoreCache
from repro.variation.binning import (
    SCRAP_BIN,
    die_metrics,
    skylake_binning_policy,
)
from repro.variation.distributions import skylake_process_variation
from repro.variation.population import UNSEEDED_DEFAULT_SEED
from repro.variation.sampler import DiePopulationSampler
from repro.workloads.dynamics import sustained_scenario

DEMAND = CpuDemand(active_cores=4)
TDP_GRID = tuple(float(t) for t in range(10, 92, 3))
TARGET_HZ = 3.0e9


def _min_tdp_query(method: str, name: str = "min-tdp") -> OptimizationSpec:
    return OptimizationSpec(
        name=name,
        method=method,
        objectives=(Objective("tdp_w", "min"),),
        constraints=(Constraint("sustained_frequency_hz", ">=", TARGET_HZ),),
        variables={"tdp_w": TDP_GRID},
    )


# -- spec validation -------------------------------------------------------------------


class TestSpecValidation:
    def test_unknown_method_names_known_set(self):
        with pytest.raises(ConfigurationError, match="bisect.*grid.*pareto.*cutoff"):
            OptimizationSpec(
                name="bad", method="anneal", objectives=(Objective("x"),),
                variables={"x": (1.0,)},
            )

    def test_objective_sense_validated(self):
        with pytest.raises(ConfigurationError, match="min.*max"):
            Objective("tdp_w", "minimise")

    def test_constraint_op_validated(self):
        with pytest.raises(ConfigurationError, match=">=.*<="):
            Constraint("f", "==", 1.0)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="empty grid"):
            OptimizationSpec(
                name="bad", method="grid", objectives=(Objective("x"),),
                variables={"x": ()},
            )

    def test_unsorted_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly ascending"):
            OptimizationSpec(
                name="bad", method="grid", objectives=(Objective("x"),),
                variables={"x": (2.0, 1.0)},
            )

    def test_bisect_needs_constraint(self):
        with pytest.raises(ConfigurationError, match="at least one constraint"):
            OptimizationSpec(
                name="bad", method="bisect",
                objectives=(Objective("tdp_w", "min"),),
                variables={"tdp_w": (10.0, 20.0)},
            )

    def test_bisect_objective_must_be_the_variable(self):
        with pytest.raises(ConfigurationError, match="must equal the variable"):
            OptimizationSpec(
                name="bad", method="bisect",
                objectives=(Objective("package_power_w", "min"),),
                constraints=(Constraint("sustained_frequency_hz", ">=", 1e9),),
                variables={"tdp_w": (10.0, 20.0)},
            )

    def test_pareto_needs_two_objectives(self):
        with pytest.raises(ConfigurationError, match="at least two objectives"):
            OptimizationSpec(
                name="bad", method="pareto",
                objectives=(Objective("tdp_w", "min"),),
                variables={"tdp_w": (10.0, 20.0)},
            )

    def test_cutoff_needs_asp(self):
        with pytest.raises(ConfigurationError, match="asp"):
            OptimizationSpec(
                name="bad", method="cutoff",
                objectives=(Objective("revenue_per_die", "max"),),
                variables={"premium-desktop": (4.0e9,)},
            )

    def test_mapping_and_pair_variables_are_equivalent(self):
        from_mapping = _min_tdp_query("bisect")
        from_pairs = dataclasses.replace(
            from_mapping, variables=(("tdp_w", TDP_GRID),)
        )
        assert from_mapping == from_pairs

    def test_describe_mentions_objective_and_constraints(self):
        text = _min_tdp_query("bisect").describe()
        assert "min tdp_w" in text
        assert "sustained_frequency_hz >= 3e+09" in text


# -- backend validation ----------------------------------------------------------------


class TestBackendValidation:
    def test_exactly_one_backend_required(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            Study.optimize(("darkgates",), _min_tdp_query("bisect"))
        with pytest.raises(ConfigurationError, match="exactly one"):
            Study.optimize(
                ("darkgates",), _min_tdp_query("bisect"),
                demand=DEMAND, scenario=sustained_scenario(),
            )

    def test_population_args_rejected_outside_cutoff(self):
        with pytest.raises(ConfigurationError, match="cutoff"):
            Study.optimize(
                ("darkgates",), _min_tdp_query("bisect"),
                demand=DEMAND, count=100,
            )

    def test_cutoff_requires_population_args(self):
        query = OptimizationSpec(
            name="cut", method="cutoff",
            objectives=(Objective("revenue_per_die", "max"),),
            variables={"premium-desktop": (4.2e9,)},
            asp={"premium-desktop": 450.0, "mainstream-mobile": 220.0},
        )
        with pytest.raises(ConfigurationError, match="variations.*count"):
            Study.optimize(("darkgates",), query)

    def test_cutoff_unknown_bin_lists_known(self):
        query = OptimizationSpec(
            name="cut", method="cutoff",
            objectives=(Objective("revenue_per_die", "max"),),
            variables={"ultra-premium": (4.2e9,)},
            asp={"ultra-premium": 900.0},
        )
        with pytest.raises(ConfigurationError, match="unknown.*ultra-premium.*known"):
            Study.optimize(
                ("darkgates",), query,
                variations=skylake_process_variation(), count=64,
            )

    def test_cutoff_missing_asp_bin_listed(self):
        query = OptimizationSpec(
            name="cut", method="cutoff",
            objectives=(Objective("revenue_per_die", "max"),),
            variables={"premium-desktop": (4.2e9,)},
            asp={"premium-desktop": 450.0},
        )
        with pytest.raises(ConfigurationError, match="mainstream-mobile"):
            Study.optimize(
                ("darkgates",), query,
                variations=skylake_process_variation(), count=64,
            )

    def test_unknown_sweep_kwarg_names_valid_set(self):
        with pytest.raises(ConfigurationError, match="valid keywords.*executor"):
            Study.optimize(
                ("darkgates",), _min_tdp_query("bisect"),
                demand=DEMAND, workers=4,
            )

    def test_max_workers_conflicts_with_serial_executor(self):
        with pytest.raises(ConfigurationError, match="executor='process'"):
            Study.optimize(
                ("darkgates",), _min_tdp_query("bisect"),
                demand=DEMAND, executor="serial", max_workers=4,
            )

    def test_unknown_metric_names_available_set(self):
        query = OptimizationSpec(
            name="bad-metric", method="bisect",
            objectives=(Objective("tdp_w", "min"),),
            constraints=(Constraint("fmax_sustained", ">=", 1e9),),
            variables={"tdp_w": (10.0, 91.0)},
        )
        with pytest.raises(ConfigurationError, match="available.*sustained_frequency_hz"):
            Study.optimize(("darkgates",), query, demand=DEMAND).run()


# -- oracle exactness ------------------------------------------------------------------


class TestBisectMatchesDenseOracle:
    def test_static_backend_exact(self):
        fast = Study.optimize(
            ("darkgates", "baseline"), _min_tdp_query("bisect"), demand=DEMAND
        ).run()
        oracle = Study.optimize(
            ("darkgates", "baseline"), _min_tdp_query("grid", "oracle"),
            demand=DEMAND,
        ).run()
        for solved, dense in zip(fast.cells, oracle.cells):
            assert solved.best.variables == dense.best.variables
            assert solved.best.metrics == dense.best.metrics
            assert solved.probes < dense.probes

    def test_dynamics_backend_exact(self):
        scenario = sustained_scenario()
        grid = tuple(float(t) for t in range(15, 92, 4))
        query = dataclasses.replace(
            _min_tdp_query("bisect"), variables=(("tdp_w", grid),)
        )
        oracle_query = dataclasses.replace(
            query, name="oracle", method="grid"
        )
        fast = Study.optimize(("darkgates",), query, scenario=scenario).run()
        oracle = Study.optimize(
            ("darkgates",), oracle_query, scenario=scenario
        ).run()
        assert fast.cells[0].best == oracle.cells[0].best

    def test_max_sense_exact(self):
        # Highest TDP whose package power stays under a budget: feasibility
        # is monotone the other way, exercising the mirrored bisection.
        grid = tuple(float(t) for t in range(10, 92, 3))
        query = OptimizationSpec(
            name="max-tdp", method="bisect",
            objectives=(Objective("tdp_w", "max"),),
            constraints=(Constraint("package_power_w", "<=", 45.0),),
            variables={"tdp_w": grid},
        )
        oracle_query = dataclasses.replace(query, name="oracle", method="grid")
        fast = Study.optimize(("darkgates",), query, demand=DEMAND).run()
        oracle = Study.optimize(
            ("darkgates",), oracle_query, demand=DEMAND
        ).run()
        assert fast.cells[0].best == oracle.cells[0].best

    def test_process_pool_matches_serial(self):
        serial = Study.optimize(
            ("darkgates", "baseline"), _min_tdp_query("bisect"), demand=DEMAND
        ).run()
        pooled = Study.optimize(
            ("darkgates", "baseline"), _min_tdp_query("bisect"),
            demand=DEMAND, executor="process", max_workers=2,
        ).run()
        assert serial == pooled


class TestCutoffMatchesBruteForce:
    CUTOFF_GRIDS = {
        "premium-desktop": (4.0e9, 4.2e9, 4.4e9, 4.6e9),
        "mainstream-mobile": (3.4e9, 3.7e9, 4.0e9),
    }
    ASP = {"premium-desktop": 450.0, "mainstream-mobile": 220.0}
    COUNT = 1500
    SEED = 11

    def _query(self):
        return OptimizationSpec(
            name="cutoffs", method="cutoff",
            objectives=(Objective("revenue_per_die", "max"),),
            constraints=(Constraint("yield.total", ">=", 0.55),),
            variables=self.CUTOFF_GRIDS,
            asp=self.ASP,
        )

    def _brute_force(self):
        """Row-major nested loop over BinningPolicy reports — the oracle."""
        policy = skylake_binning_policy()
        spec = resolve_spec("darkgates")
        population = DiePopulationSampler(skylake_process_variation()).sample(
            self.COUNT, seed=self.SEED
        )
        metrics = die_metrics(build_engine(spec).pcode, population)
        best = None
        for combo in itertools.product(
            *(self.CUTOFF_GRIDS[name] for name in self.CUTOFF_GRIDS)
        ):
            cutoffs = dict(zip(self.CUTOFF_GRIDS, combo))
            candidate = dataclasses.replace(
                policy,
                bins=tuple(
                    dataclasses.replace(b, min_fmax_hz=cutoffs[b.name])
                    for b in policy.bins
                ),
            )
            report = candidate.report(metrics)
            total_yield = 1.0 - report.yield_fractions[SCRAP_BIN]
            if total_yield < 0.55:
                continue
            revenue = sum(
                report.yield_fractions[name] * self.ASP[name]
                for name in candidate.bin_names
            )
            if best is None or revenue > best[1]:
                best = (cutoffs, revenue)
        return best

    def test_matches_nested_loop_bit_for_bit(self):
        result = Study.optimize(
            ("darkgates",), self._query(),
            variations=skylake_process_variation(), count=self.COUNT,
            seed=self.SEED,
        ).run()
        cutoffs, revenue = self._brute_force()
        best = result.cells[0].best
        assert dict(best.variables) == cutoffs
        assert best.metric("revenue_per_die") == revenue

    def test_unseeded_pins_documented_default(self):
        study = Study.optimize(
            ("darkgates",), self._query(),
            variations=skylake_process_variation(), count=64,
        )
        assert study.seed == UNSEEDED_DEFAULT_SEED
        assert study.run().seed == UNSEEDED_DEFAULT_SEED


class TestParetoFrontier:
    GRID = (15.0, 25.0, 35.0, 45.0, 65.0, 91.0)

    def _query(self):
        return OptimizationSpec(
            name="front", method="pareto",
            objectives=(
                Objective("tdp_w", "min"),
                Objective("sustained_frequency_hz", "max"),
            ),
            variables={"tdp_w": self.GRID},
        )

    def test_every_point_nondominated_and_every_excluded_dominated(self):
        result = Study.optimize(
            ("darkgates",), self._query(), demand=DEMAND
        ).run()
        points = {
            point.variable("tdp_w"): point.metric("sustained_frequency_hz")
            for point in result.cells[0].points
        }
        assert points, "frontier must not be empty"

        def dominates(a, b):
            tdp_a, f_a = a
            tdp_b, f_b = b
            return (tdp_a <= tdp_b and f_a >= f_b) and (
                tdp_a < tdp_b or f_a > f_b
            )

        frontier = list(points.items())
        for mine in frontier:
            assert not any(
                dominates(other, mine) for other in frontier if other != mine
            )

    def test_monotone_tradeoff_keeps_every_grid_point(self):
        # Sustained frequency is non-decreasing in TDP, so no point is
        # dominated: the frontier must be the whole grid, in grid order.
        result = Study.optimize(
            ("darkgates",), self._query(), demand=DEMAND
        ).run()
        tdps = [p.variable("tdp_w") for p in result.cells[0].points]
        assert tdps == list(self.GRID)


# -- warm store ------------------------------------------------------------------------


class TestStoreIntegration:
    def test_warm_store_executes_zero_tasks(self, tmp_path):
        store = RunStore(tmp_path / "store")
        cold = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND,
            cache=StoreCache(store=store),
        )
        cold_result = cold.run()
        assert cold.tasks_executed > 0

        warm = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND,
            cache=StoreCache(store=store),
        )
        warm_result = warm.run()
        assert warm_result == cold_result
        assert warm.tasks_total == 0
        assert warm.tasks_executed == 0

    def test_changed_query_misses_the_short_circuit(self, tmp_path):
        store = RunStore(tmp_path / "store")
        first = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND,
            cache=StoreCache(store=store),
        ).run()
        tightened = dataclasses.replace(
            _min_tdp_query("bisect"),
            constraints=(
                Constraint("sustained_frequency_hz", ">=", TARGET_HZ + 1e8),
            ),
        )
        second = Study.optimize(
            ("darkgates",), tightened, demand=DEMAND,
            cache=StoreCache(store=store),
        )
        result = second.run()
        # The condensed result re-solves, but every probe it shares with
        # the first query is served from the store.
        assert second.tasks_total > 0
        assert second.tasks_executed < second.tasks_total
        assert (
            result.cells[0].best.variable("tdp_w")
            >= first.cells[0].best.variable("tdp_w")
        )

    def test_store_codec_round_trips_result(self, tmp_path):
        from repro.store.artifacts import decode_value, encode_value

        result = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND
        ).run()
        payload = encode_value(result)
        assert payload["codec"] == "optimization"
        assert decode_value(payload) == result


# -- infeasibility errors --------------------------------------------------------------


class TestInfeasibleErrors:
    def test_target_above_fmax_ceiling_names_the_ceiling(self):
        query = OptimizationSpec(
            name="impossible", method="bisect",
            objectives=(Objective("tdp_w", "min"),),
            constraints=(Constraint("sustained_frequency_hz", ">=", 9.9e9),),
            variables={"tdp_w": (15.0, 91.0)},
        )
        with pytest.raises(
            ConfigurationError,
            match=r"exceeds the Vmax/Iccmax-limited ceiling",
        ):
            Study.optimize(("darkgates",), query, demand=DEMAND).run()

    def test_infeasible_bracket_names_grid_and_constraint(self):
        query = OptimizationSpec(
            name="short-grid", method="bisect",
            objectives=(Objective("tdp_w", "min"),),
            constraints=(Constraint("sustained_frequency_hz", ">=", TARGET_HZ),),
            variables={"tdp_w": (10.0, 15.0, 20.0)},
        )
        with pytest.raises(
            ConfigurationError, match=r"\[10 \.\. 20\].*Widen the grid"
        ):
            Study.optimize(("darkgates",), query, demand=DEMAND).run()

    def test_empty_feasible_set_on_dense_grid(self):
        query = OptimizationSpec(
            name="empty", method="grid",
            objectives=(Objective("tdp_w", "min"),),
            constraints=(Constraint("sustained_frequency_hz", ">=", 9.9e9),),
            variables={"tdp_w": (10.0, 15.0)},
        )
        with pytest.raises(ConfigurationError, match="empty feasible set"):
            Study.optimize(("darkgates",), query, demand=DEMAND).run()

    def test_cutoff_empty_feasible_set(self):
        query = OptimizationSpec(
            name="greedy", method="cutoff",
            objectives=(Objective("revenue_per_die", "max"),),
            constraints=(Constraint("yield.total", ">=", 1.5),),
            variables={"premium-desktop": (4.2e9,)},
            asp={"premium-desktop": 450.0, "mainstream-mobile": 220.0},
        )
        with pytest.raises(ConfigurationError, match="empty feasible set"):
            Study.optimize(
                ("darkgates",), query,
                variations=skylake_process_variation(), count=64,
            ).run()


# -- result plumbing -------------------------------------------------------------------


class TestResultShape:
    def test_json_round_trip_is_equal(self):
        result = Study.optimize(
            ("darkgates", "baseline"), _min_tdp_query("bisect"), demand=DEMAND
        ).run()
        assert OptimizationResult.from_json(result.to_json()) == result

    def test_cell_lookup_by_label_and_unknown_raises(self):
        result = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND
        ).run()
        assert result.cell("darkgates@91W").best.variable("tdp_w") > 0
        with pytest.raises(ConfigurationError, match="no cell"):
            result.cell("nonexistent")

    def test_as_table_mentions_solution(self):
        result = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND
        ).run()
        table = result.as_table()
        assert "tdp_w=" in table and "darkgates@91W" in table

    def test_study_optimize_returns_optimization_study(self):
        study = Study.optimize(
            ("darkgates",), _min_tdp_query("bisect"), demand=DEMAND
        )
        assert isinstance(study, OptimizationStudy)
        assert study.request.name == "min-tdp"

    def test_duplicate_base_specs_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate base specs"):
            Study.optimize(
                ("darkgates", "darkgates"), _min_tdp_query("bisect"),
                demand=DEMAND,
            )


# -- hypothesis properties -------------------------------------------------------------


@st.composite
def _monotone_feasibility(draw):
    """A grid plus a monotone feasibility pattern (False* True*)."""
    size = draw(st.integers(min_value=1, max_value=24))
    first_feasible = draw(st.integers(min_value=0, max_value=size))
    return size, first_feasible


@given(_monotone_feasibility())
@settings(max_examples=100)
def test_bisection_bracket_invariant_matches_linear_scan(pattern):
    """Leftmost-feasible bisection == linear scan on any monotone pattern.

    The bisect solver's loop with ``feasible -> hi = mid`` maintains the
    invariant "everything below lo is infeasible, hi is feasible"; this
    drives the same index arithmetic over synthetic feasibility and checks
    it lands on the first True, for every grid size and threshold.
    """
    size, first_feasible = pattern
    feasible = [index >= first_feasible for index in range(size)]
    if not feasible[-1]:
        return  # infeasible bracket: the solver raises before bisecting
    lo, hi = 0, size - 1
    probes = 0
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        if feasible[mid]:
            hi = mid
        else:
            lo = mid + 1
    assert lo == feasible.index(True)
    assert probes <= max(1, int(np.ceil(np.log2(size))) + 1)


@given(
    points=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=8),
            st.integers(min_value=0, max_value=8),
        ),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=100)
def test_pareto_partition_property(points):
    """Dominance partitions any point set: kept <-> non-dominated."""
    objectives = (Objective("a", "min"), Objective("b", "max"))

    def dominated(mine, others):
        for other in others:
            if other == mine:
                continue
            as_good = all(
                not o.better(m, t)
                for o, m, t in zip(objectives, mine, other)
            )
            better = any(
                o.better(t, m) for o, m, t in zip(objectives, mine, other)
            )
            if as_good and better:
                return True
        return False

    unique = sorted(set(points))
    frontier = [p for p in unique if not dominated(p, unique)]
    assert frontier, "a finite point set always has a non-dominated point"
    for point in unique:
        assert (point in frontier) == (not dominated(point, unique))


@given(
    grids=st.lists(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        min_size=1,
        max_size=3,
    ),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
)
@settings(max_examples=60)
def test_spec_and_result_json_round_trip(grids, seed):
    """Any valid spec (and a result built on it) survives its JSON trip."""
    spec = OptimizationSpec(
        name="prop", method="grid",
        objectives=(Objective("v0", "min"),),
        constraints=(Constraint("metric", ">=", 0.5),),
        variables=[
            (f"v{index}", tuple(sorted(grid)))
            for index, grid in enumerate(grids)
        ],
    )
    assert OptimizationSpec.from_dict(spec.to_dict()) == spec

    from repro.analysis.optimize import OptimizationCell, OptimizationPoint

    result = OptimizationResult(
        name="prop", spec=spec, seed=seed,
        cells=(
            OptimizationCell(
                spec=resolve_spec("darkgates"),
                points=(
                    OptimizationPoint(
                        variables=(("v0", float(grids[0][0])),),
                        metrics=(("metric", 1.25),),
                    ),
                ),
                probes=3,
            ),
        ),
    )
    assert OptimizationResult.from_json(result.to_json()) == result
