"""Unit tests for repro.common: units, grids, validation, errors."""

from __future__ import annotations

import math

import pytest

from repro.common.errors import (
    CalibrationError,
    ConfigurationError,
    ConstraintViolation,
    ReproError,
    SimulationError,
)
from repro.common.grid import FrequencyGrid
from repro.common.units import (
    GHZ,
    MHZ,
    celsius_to_kelvin,
    from_ghz,
    from_mhz,
    from_mv,
    from_mohm,
    kelvin_to_celsius,
    to_ghz,
    to_mhz,
    to_mv,
    to_mohm,
)
from repro.common.validation import ensure_in_range, ensure_non_negative, ensure_positive


# -- units ---------------------------------------------------------------------------


def test_ghz_round_trip():
    assert to_ghz(from_ghz(4.2)) == pytest.approx(4.2)


def test_mhz_round_trip():
    assert to_mhz(from_mhz(100.0)) == pytest.approx(100.0)


def test_from_ghz_magnitude():
    assert from_ghz(1.0) == pytest.approx(1e9)


def test_from_mhz_magnitude():
    assert from_mhz(100.0) == pytest.approx(1e8)


def test_mv_round_trip():
    assert to_mv(from_mv(85.0)) == pytest.approx(85.0)


def test_mohm_round_trip():
    assert to_mohm(from_mohm(1.8)) == pytest.approx(1.8)


def test_temperature_round_trip():
    assert kelvin_to_celsius(celsius_to_kelvin(100.0)) == pytest.approx(100.0)


def test_celsius_to_kelvin_offset():
    assert celsius_to_kelvin(0.0) == pytest.approx(273.15)


# -- errors ---------------------------------------------------------------------------


def test_all_errors_derive_from_repro_error():
    for exc_type in (ConfigurationError, ConstraintViolation, SimulationError, CalibrationError):
        assert issubclass(exc_type, ReproError)


def test_constraint_violation_carries_context():
    error = ConstraintViolation("TDP", requested=100.0, allowed=91.0)
    assert error.limit == "TDP"
    assert error.requested == pytest.approx(100.0)
    assert error.allowed == pytest.approx(91.0)
    assert "TDP" in str(error)


# -- validation -----------------------------------------------------------------------


def test_ensure_positive_accepts_positive():
    assert ensure_positive(1.5, "x") == 1.5


def test_ensure_positive_rejects_zero():
    with pytest.raises(ConfigurationError):
        ensure_positive(0.0, "x")


def test_ensure_positive_rejects_negative():
    with pytest.raises(ConfigurationError):
        ensure_positive(-1.0, "x")


def test_ensure_positive_rejects_nan():
    with pytest.raises(ConfigurationError):
        ensure_positive(float("nan"), "x")


def test_ensure_positive_rejects_bool():
    with pytest.raises(ConfigurationError):
        ensure_positive(True, "x")


def test_ensure_non_negative_accepts_zero():
    assert ensure_non_negative(0.0, "x") == 0.0


def test_ensure_non_negative_rejects_negative():
    with pytest.raises(ConfigurationError):
        ensure_non_negative(-0.001, "x")


def test_ensure_in_range_accepts_bounds():
    assert ensure_in_range(0.0, 0.0, 1.0, "x") == 0.0
    assert ensure_in_range(1.0, 0.0, 1.0, "x") == 1.0


def test_ensure_in_range_rejects_outside():
    with pytest.raises(ConfigurationError):
        ensure_in_range(1.5, 0.0, 1.0, "x")


def test_validation_error_mentions_parameter_name():
    with pytest.raises(ConfigurationError, match="my_parameter"):
        ensure_positive(-1.0, "my_parameter")


# -- frequency grid ---------------------------------------------------------------------


def _skylake_grid() -> FrequencyGrid:
    return FrequencyGrid(min_hz=800 * MHZ, max_hz=4.2 * GHZ, step_hz=100 * MHZ)


def test_grid_length():
    grid = _skylake_grid()
    assert len(grid) == 35  # 0.8 to 4.2 GHz inclusive in 100 MHz steps


def test_grid_points_are_sorted_and_bounded():
    grid = _skylake_grid()
    points = grid.points()
    assert points[0] == pytest.approx(800 * MHZ)
    assert points[-1] == pytest.approx(4.2 * GHZ)
    assert points == sorted(points)


def test_grid_floor_quantises_down():
    grid = _skylake_grid()
    assert grid.floor(3.456e9) == pytest.approx(3.4e9)


def test_grid_floor_clamps_low():
    grid = _skylake_grid()
    assert grid.floor(0.1e9) == pytest.approx(800 * MHZ)


def test_grid_floor_clamps_high():
    grid = _skylake_grid()
    assert grid.floor(9.9e9) == pytest.approx(4.2e9)


def test_grid_ceil_quantises_up():
    grid = _skylake_grid()
    assert grid.ceil(3.401e9) == pytest.approx(3.5e9)


def test_grid_ceil_of_exact_point_is_identity():
    grid = _skylake_grid()
    assert grid.ceil(3.4e9) == pytest.approx(3.4e9)


def test_grid_contains_grid_point():
    grid = _skylake_grid()
    assert grid.contains(2.5e9)
    assert not grid.contains(2.55e9)
    assert not grid.contains(10e9)


def test_grid_step_down_and_up():
    grid = _skylake_grid()
    assert grid.step_down(2.5e9) == pytest.approx(2.4e9)
    assert grid.step_up(2.5e9) == pytest.approx(2.6e9)
    assert grid.step_down(800 * MHZ) == pytest.approx(800 * MHZ)
    assert grid.step_up(4.2e9) == pytest.approx(4.2e9)


def test_grid_descending_is_reverse_of_points():
    grid = _skylake_grid()
    assert grid.descending() == list(reversed(grid.points()))


def test_grid_clamp():
    grid = _skylake_grid()
    assert grid.clamp(0.0) == pytest.approx(800 * MHZ)
    assert grid.clamp(5e9) == pytest.approx(4.2e9)
    assert grid.clamp(2.345e9) == pytest.approx(2.345e9)


def test_grid_rejects_inverted_bounds():
    with pytest.raises(ConfigurationError):
        FrequencyGrid(min_hz=2e9, max_hz=1e9)


def test_grid_rejects_non_positive_step():
    with pytest.raises(ConfigurationError):
        FrequencyGrid(min_hz=1e9, max_hz=2e9, step_hz=0.0)


def test_grid_floor_is_idempotent():
    grid = _skylake_grid()
    for value in (0.93e9, 1.77e9, 3.99e9):
        floored = grid.floor(value)
        assert grid.floor(floored) == pytest.approx(floored)
        assert math.isclose((floored - grid.min_hz) % grid.step_hz, 0.0, abs_tol=1.0) or math.isclose(
            (floored - grid.min_hz) % grid.step_hz, grid.step_hz, abs_tol=1.0
        )
