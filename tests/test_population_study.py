"""Population-study tests: fast-path identity, JSON round trips, seeding.

The load-bearing guarantee of the variation subsystem is that the batched
population fast path is *bit-identical* to the per-die reference path —
same seed, same trajectories, same quantiles — so the equivalence tests
here assert exact dataclass equality, not tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.study import Study, StudyResult
from repro.common.errors import ConfigurationError
from repro.core.spec import get_spec
from repro.sim.engine import SimulationEngine
from repro.variation.distributions import skylake_process_variation
from repro.variation.population import (
    UNSEEDED_DEFAULT_SEED,
    PopulationResult,
    PopulationStudy,
)
from repro.variation.sampler import DiePopulationSampler, DieVariation
from repro.workloads.dynamics import burst_scenario, sprint_and_rest_scenario

VARIATIONS = skylake_process_variation()

#: Short scenarios keep the per-die reference sweep affordable in CI.
SCENARIOS = (
    burst_scenario(idle_lead_s=4.0, burst_s=14.0, time_step_s=0.1),
    sprint_and_rest_scenario(
        sprint_s=5.0, rest_s=4.0, cycles=2, active_cores=2, time_step_s=0.1
    ),
)


@pytest.fixture(scope="module")
def fast_result() -> PopulationResult:
    return Study.over_population(
        ("darkgates", "baseline"),
        SCENARIOS,
        VARIATIONS,
        count=10,
        tdp_levels_w=(35.0, 65.0),
        seed=42,
    ).run()


@pytest.fixture(scope="module")
def reference_result() -> PopulationResult:
    return Study.over_population(
        ("darkgates", "baseline"),
        SCENARIOS,
        VARIATIONS,
        count=10,
        tdp_levels_w=(35.0, 65.0),
        seed=42,
        method="reference",
    ).run()


# -- fast == reference -----------------------------------------------------------------


def test_fast_path_is_identical_to_reference(fast_result, reference_result):
    """Same seed -> exactly equal cells and binning, not just close."""
    assert fast_result.cells == reference_result.cells
    assert fast_result.binning == reference_result.binning
    assert fast_result.seed == reference_result.seed
    assert fast_result.method == "fast"
    assert reference_result.method == "reference"


def test_population_traces_match_per_die_reference_loop():
    """The lockstep matrices equal per-die stepping through the *Python* loop."""
    spec = get_spec("darkgates", tdp_w=45.0)
    scenario = SCENARIOS[0]
    population = DiePopulationSampler(VARIATIONS).sample(5, seed=9)
    traces = SimulationEngine(spec.build()).run_population(scenario, population)
    for index, die_spec in enumerate(population.specs(spec)):
        engine = SimulationEngine(die_spec.build())
        loop = engine.run_dynamic_scenario(scenario, method="reference")
        assert tuple(traces.frequencies_hz[:, index].tolist()) == loop.frequencies_hz
        assert tuple(traces.package_powers_w[:, index].tolist()) == (
            loop.package_powers_w
        )
        assert tuple(traces.temperatures_c[:, index].tolist()) == loop.temperatures_c
        assert tuple(traces.average_powers_w[:, index].tolist()) == (
            loop.average_powers_w
        )
        assert tuple(traces.limiting_factor_names()[:, index].tolist()) == (
            loop.limiting_factors
        )
        assert tuple(traces.package_cstate_names()) == loop.package_cstates


def test_run_population_rejects_varied_base_system():
    spec = get_spec("darkgates").variant(
        name="varied", die_variation=DieVariation(leakage_scale=1.1)
    )
    population = DiePopulationSampler(VARIATIONS).sample(3, seed=0)
    with pytest.raises(ConfigurationError):
        SimulationEngine(spec.build()).run_population(SCENARIOS[0], population)


# -- results ---------------------------------------------------------------------------


def test_population_result_round_trips_through_json(fast_result):
    rebuilt = PopulationResult.from_json(fast_result.to_json())
    assert rebuilt == fast_result
    # Bin yields and percentile traces survive the round trip exactly.
    assert rebuilt.bin_yields("darkgates") == fast_result.bin_yields("darkgates")
    cell = fast_result.cell("darkgates@35W", SCENARIOS[0])
    assert (
        rebuilt.cell("darkgates@35W", SCENARIOS[0]).frequency_percentiles_hz
        == cell.frequency_percentiles_hz
    )


def test_seed_is_recorded_and_replayable(fast_result):
    assert fast_result.seed == 42
    replay = Study.over_population(
        ("darkgates", "baseline"),
        SCENARIOS,
        VARIATIONS,
        count=10,
        tdp_levels_w=(35.0, 65.0),
        seed=42,
    ).run()
    assert replay == fast_result


def test_cell_lookup_and_summaries(fast_result):
    cell = fast_result.cell("darkgates@35W", SCENARIOS[0])
    assert cell.count == 10
    assert set(cell.frequency_percentiles_hz) == {"p5", "p50", "p95"}
    assert len(cell.times_s) == len(cell.frequency_percentiles_hz["p50"])
    # Percentiles are ordered per step.
    p5 = np.array(cell.frequency_percentiles_hz["p5"])
    p95 = np.array(cell.frequency_percentiles_hz["p95"])
    assert (p5 <= p95).all()
    assert sum(cell.limiting_histogram.values()) == pytest.approx(1.0)
    quantiles = cell.sustained_quantiles_ghz()
    assert quantiles[0] <= quantiles[1] <= quantiles[2]
    with pytest.raises(ConfigurationError):
        fast_result.cell("darkgates@45W", SCENARIOS[0])
    with pytest.raises(ConfigurationError):
        fast_result.spec_binning("unknown-spec")


def test_sustained_by_bin_joins_assignments(fast_result):
    cell = fast_result.cell("darkgates@65W", SCENARIOS[0])
    by_bin = fast_result.sustained_by_bin(cell, "darkgates")
    binning = fast_result.spec_binning("darkgates")
    populated = {
        name
        for name, count in binning.report.counts.items()
        if count > 0
    }
    assert set(by_bin) == populated
    for low, high in by_bin.values():
        assert low <= high


def test_unseeded_study_pins_one_seed_for_every_path():
    """seed=None pins the documented default; cells, binning, replays share it.

    The pin is a constant rather than an entropy draw so that "unseeded"
    population runs are replayable by construction — same dice in every
    process, same content-addressed run IDs.
    """
    study = PopulationStudy(
        ("darkgates",), SCENARIOS[:1], VARIATIONS, count=6, seed=None
    )
    assert study.seed == UNSEEDED_DEFAULT_SEED
    result = study.run()
    assert result.seed == study.seed
    # The recorded seed replays the run exactly — including on the
    # reference path, which must see the same dice as the fast cells.
    replay = PopulationStudy(
        ("darkgates",), SCENARIOS[:1], VARIATIONS, count=6, seed=result.seed,
        method="reference",
    ).run()
    assert replay.cells == result.cells
    assert replay.binning == result.binning


def test_population_study_validation():
    with pytest.raises(ConfigurationError):
        PopulationStudy(("darkgates",), SCENARIOS, VARIATIONS, count=0)
    with pytest.raises(ConfigurationError):
        PopulationStudy((), SCENARIOS, VARIATIONS, count=4)
    with pytest.raises(ConfigurationError):
        PopulationStudy(("darkgates",), (), VARIATIONS, count=4)
    with pytest.raises(ConfigurationError):
        PopulationStudy(
            ("darkgates",), SCENARIOS, VARIATIONS, count=4, method="warp"
        )
    varied = get_spec("darkgates").variant(
        name="varied", die_variation=DieVariation(leakage_scale=1.1)
    )
    with pytest.raises(ConfigurationError):
        PopulationStudy((varied,), SCENARIOS, VARIATIONS, count=4)


def test_population_study_streaming_validation():
    with pytest.raises(ConfigurationError, match="needs a shard_size"):
        PopulationStudy(
            ("darkgates",), SCENARIOS, VARIATIONS, count=8, method="streaming"
        )
    with pytest.raises(ConfigurationError, match="only applies"):
        PopulationStudy(
            ("darkgates",), SCENARIOS, VARIATIONS, count=8, shard_size=4
        )
    with pytest.raises(ConfigurationError, match="already streams"):
        PopulationStudy(
            ("darkgates",),
            SCENARIOS,
            VARIATIONS,
            count=8,
            method="streaming",
            shard_size=64,
        )


def test_streaming_study_counts_tasks_and_serves_warm_runs_from_cache():
    cache: dict = {}
    kwargs = dict(
        count=8,
        tdp_levels_w=(65.0,),
        seed=42,
        method="streaming",
        shard_size=4,
        cache=cache,
    )
    study = Study.over_population(
        ("darkgates",), SCENARIOS[:1], VARIATIONS, **kwargs
    )
    cold = study.run()
    # 2 cell shards + 2 binning shards, all executed on the cold pass.
    assert study.tasks_total == 4 and study.tasks_executed == 4
    assert cold.shard_size == 4 and cold.method == "streaming"

    warm_study = Study.over_population(
        ("darkgates",), SCENARIOS[:1], VARIATIONS, **kwargs
    )
    warm = warm_study.run()
    assert warm_study.tasks_total == 4 and warm_study.tasks_executed == 0
    assert warm == cold


def test_streaming_result_json_kind_dispatch():
    result = Study.over_population(
        ("darkgates",),
        SCENARIOS[:1],
        VARIATIONS,
        count=8,
        tdp_levels_w=(65.0,),
        seed=42,
        method="streaming",
        shard_size=4,
    ).run()
    payload = result.to_json()
    rebuilt = PopulationResult.from_json(payload)
    assert rebuilt == result
    import json

    raw = json.loads(payload)
    assert raw["shard_size"] == 4
    assert {cell["kind"] for cell in raw["cells"]} == {"streaming_cell"}
    assert {b["kind"] for b in raw["binning"]} == {"streaming_binning"}


# -- study seed plumbing ---------------------------------------------------------------


def test_study_seed_round_trips_in_json():
    study = Study(tasks=(), seed=7, name="seeded")
    result = study.run()
    assert result.seed == 7
    rebuilt = StudyResult.from_json(result.to_json())
    assert rebuilt.seed == 7
    # Deterministic studies omit the key and read back as None.
    plain = Study(tasks=(), name="plain").run()
    assert plain.seed is None
    assert '"seed"' not in plain.to_json()
    assert StudyResult.from_json(plain.to_json()).seed is None
