"""Tests for the declarative SystemSpec API, engine.run() dispatch, and
RunResult serialisation."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.core.darkgates import (
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)
from repro.core.spec import (
    SystemSpec,
    get_spec,
    register_spec,
    resolve_spec,
    spec_names,
)
from repro.pmu.fuses import PowerDeliveryMode
from repro.reliability.guardband import ReliabilityGuardbandModel
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import RunResult
from repro.workloads.descriptors import ResidencyPhase, ScenarioPhase, Workload
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.spec import spec_benchmark


# -- registry ------------------------------------------------------------------------------------


def test_registry_contains_paper_configurations():
    names = spec_names()
    for expected in ("darkgates", "baseline", "darkgates+c7", "broadwell-baseline"):
        assert expected in names


def test_get_spec_unknown_name():
    with pytest.raises(ConfigurationError):
        get_spec("no-such-system")


def test_get_spec_with_overrides_returns_variant():
    spec = get_spec("darkgates", tdp_w=35.0)
    assert spec.tdp_w == 35.0
    assert spec.name == "darkgates"
    # The registered spec itself is untouched.
    assert get_spec("darkgates").tdp_w == 91.0


def test_register_spec_rejects_duplicates():
    with pytest.raises(ConfigurationError):
        register_spec(SystemSpec(name="darkgates"))


def test_resolve_spec_accepts_spec_and_name():
    spec = get_spec("baseline")
    assert resolve_spec(spec) is spec
    assert resolve_spec("baseline") == spec
    with pytest.raises(ConfigurationError):
        resolve_spec(42)


# -- spec validation -----------------------------------------------------------------------------


def test_spec_rejects_nonpositive_tdp():
    with pytest.raises(ConfigurationError):
        SystemSpec(name="bad", tdp_w=-5.0)
    with pytest.raises(ConfigurationError):
        SystemSpec(name="bad", tdp_w=0.0)


def test_spec_rejects_unknown_sku():
    with pytest.raises(ConfigurationError):
        SystemSpec(name="bad", sku="cannon-lake")


def test_spec_rejects_bad_cstate():
    with pytest.raises(ConfigurationError):
        SystemSpec(name="bad", deepest_package_cstate="C99")


def test_spec_coerces_power_delivery_string():
    spec = SystemSpec(name="coerced", power_delivery="normal")
    assert spec.power_delivery is PowerDeliveryMode.NORMAL
    with pytest.raises(ConfigurationError):
        SystemSpec(name="bad", power_delivery="turbo")


def test_variant_rejects_unknown_fields():
    with pytest.raises(ConfigurationError):
        get_spec("darkgates").variant(tdp=35.0)


def test_spec_label():
    assert get_spec("darkgates").label == "darkgates@91W"
    assert get_spec("darkgates", tdp_w=35.0).label == "darkgates@35W"


# -- spec JSON round-trip ------------------------------------------------------------------------


def test_spec_json_round_trip():
    for name in spec_names():
        spec = get_spec(name)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert SystemSpec.from_dict(payload) == spec


def test_spec_from_dict_rejects_unknown_fields():
    payload = get_spec("darkgates").to_dict()
    payload["frobnication"] = True
    with pytest.raises(ConfigurationError):
        SystemSpec.from_dict(payload)


# -- build parity with the deprecated factories --------------------------------------------------


def test_darkgates_spec_builds_bypassed_c8():
    pcode = get_spec("darkgates").build()
    assert pcode.bypass_mode
    assert pcode.deepest_package_cstate().value == "C8"


def test_deprecated_factories_warn_and_match_specs():
    with pytest.warns(DeprecationWarning):
        legacy = darkgates_system(91.0)
    assert legacy.describe() == get_spec("darkgates").build().describe()

    with pytest.warns(DeprecationWarning):
        legacy = baseline_system(91.0)
    assert legacy.describe() == get_spec("baseline").build().describe()

    with pytest.warns(DeprecationWarning):
        legacy = darkgates_c7_limited_system(91.0)
    assert legacy.describe() == get_spec("darkgates+c7").build().describe()


def test_deprecated_factory_rejects_bad_tdp():
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ConfigurationError):
            darkgates_system(-5.0)


def test_factory_parity_run_results(darkgates_91w):
    with pytest.warns(DeprecationWarning):
        legacy = darkgates_system(91.0)
    workload = spec_benchmark("416.gamess")
    legacy_result = SimulationEngine(legacy).run(workload)
    spec_result = SimulationEngine(darkgates_91w).run(workload)
    assert legacy_result == spec_result


def test_reliability_margin_disabled_variant():
    margined = get_spec("darkgates").build()
    plain = get_spec("darkgates", apply_reliability_guardband=False).build()
    assert plain.guardband_model.reliability_margin_v == 0.0
    assert margined.guardband_model.reliability_margin_v > 0.0


# -- ReliabilityGuardbandModel.margin_for_tdp ----------------------------------------------------


def test_margin_for_tdp_anchors():
    model = ReliabilityGuardbandModel()
    assert model.margin_for_tdp(35.0) == model.guardband_for_low_tdp_desktop()
    assert model.margin_for_tdp(91.0) == model.guardband_for_high_tdp_desktop()


def test_margin_for_tdp_clamps_outside_anchors():
    model = ReliabilityGuardbandModel()
    assert model.margin_for_tdp(10.0) == model.margin_for_tdp(35.0)
    assert model.margin_for_tdp(150.0) == model.margin_for_tdp(91.0)


def test_margin_for_tdp_interpolates_monotonically():
    model = ReliabilityGuardbandModel()
    margins = [model.margin_for_tdp(tdp) for tdp in (35.0, 45.0, 65.0, 91.0)]
    assert margins == sorted(margins, reverse=True)
    mid = model.margin_for_tdp(63.0)
    assert model.margin_for_tdp(91.0) < mid < model.margin_for_tdp(35.0)


def test_margin_for_tdp_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        ReliabilityGuardbandModel().margin_for_tdp(0.0)


# -- polymorphic engine.run() --------------------------------------------------------------------


@pytest.fixture(scope="module")
def darkgates_engine():
    return SimulationEngine(get_spec("darkgates").build())


def test_run_dispatch_parity_cpu(darkgates_engine):
    workload = spec_benchmark("470.lbm")
    assert darkgates_engine.run(workload) == darkgates_engine.run_cpu_workload(workload)


def test_run_dispatch_parity_graphics(darkgates_engine):
    workload = three_dmark_suite()[0]
    assert darkgates_engine.run(workload) == darkgates_engine.run_graphics_workload(
        workload
    )


def test_run_dispatch_parity_energy(darkgates_engine):
    scenario = rmt_scenario()
    assert darkgates_engine.run(scenario) == darkgates_engine.run_energy_scenario(
        scenario
    )


def test_run_rejects_non_workloads(darkgates_engine):
    with pytest.raises(ConfigurationError):
        darkgates_engine.run("not a workload")


def test_workload_protocol_covers_all_descriptor_classes():
    for workload in (
        spec_benchmark("416.gamess"),
        three_dmark_suite()[0],
        energy_star_scenario(),
    ):
        assert isinstance(workload, Workload)


def test_scenario_phase_is_residency_phase():
    assert ScenarioPhase is ResidencyPhase


# -- RunResult JSON round-trip -------------------------------------------------------------------


def test_run_result_json_round_trip(darkgates_engine):
    for workload in (
        spec_benchmark("416.gamess"),
        three_dmark_suite()[0],
        energy_star_scenario(),
    ):
        result = darkgates_engine.run(workload)
        payload = json.loads(json.dumps(result.to_dict()))
        restored = RunResult.from_dict(payload)
        assert restored == result
        assert restored.kind == result.kind
        assert restored.primary_metric == result.primary_metric


def test_run_result_from_dict_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        RunResult.from_dict({"kind": "quantum"})
