"""The streaming population engine: equivalence, properties, error paths.

Three families of guarantees back the bounded-memory streaming path
(:mod:`repro.variation.streaming`):

* **Equivalence** — shard ``i`` of a seed-``s`` population samples
  bit-identical dice alone or inside the full draw; exact statistics
  (discrete frequency percentiles, limiting histograms, bin yields) match
  the in-memory path bit for bit; histogram-backed quantiles stay within
  their documented one-bin-width error bounds.
* **Algebra** (hypothesis) — accumulator merges are associative and
  order-independent (including bitwise-stable means), re-chunking a
  population changes nothing, and yield fractions sum to one.
* **Failure modes** — infeasible shard plans, mismatched grids, and
  double-counted shards raise :class:`ConfigurationError` with actionable
  messages instead of silently corrupting statistics.
"""

from __future__ import annotations

import json
import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.study import Study
from repro.common.errors import ConfigurationError
from repro.core.spec import build_engine, resolve_spec
from repro.variation.binning import skylake_binning_policy
from repro.variation.distributions import skylake_process_variation
from repro.variation.population import PopulationResult, PopulationStudy
from repro.variation.sampler import NOMINAL_PARAMETERS, DiePopulationSampler
from repro.variation.streaming import (
    HistogramSpec,
    ScalarAccumulator,
    ShardPlan,
    StreamingBinningResult,
    StreamingCellResult,
    StreamingCellShard,
    TraceCounts,
    TraceHistogram,
    TraceValueCounts,
    condense_population_traces,
    merge_binning_shards,
    merge_cell_shards,
    run_binning_shard,
    run_cell_shard,
    weighted_percentile,
)
from repro.workloads.dynamics import burst_scenario

SEED = 20220402
DICE = 48
SHARD = 16


@pytest.fixture(scope="module")
def scenario():
    # An idle lead exercises the active-step bookkeeping; coarse steps
    # keep the module fast.
    return burst_scenario(
        idle_lead_s=2.0,
        burst_s=6.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.5,
    )


@pytest.fixture(scope="module")
def engine():
    return build_engine(resolve_spec("darkgates").variant(tdp_w=65.0))


@pytest.fixture(scope="module")
def population():
    return DiePopulationSampler(skylake_process_variation()).sample(
        DICE, seed=SEED
    )


@pytest.fixture(scope="module")
def monolithic(engine, scenario, population):
    return engine.run_population(scenario, population)


@pytest.fixture(scope="module")
def streamed(engine, scenario, population):
    return engine.run_population(scenario, population, shard_size=SHARD)


# -- sampler shard determinism ---------------------------------------------------------


def test_sample_range_matches_full_draw_columns():
    sampler = DiePopulationSampler(skylake_process_variation())
    full = sampler.sample(300, seed=SEED)
    window = sampler.sample_range(100, 200, SEED)
    assert window.count == 100
    for parameter in NOMINAL_PARAMETERS:
        np.testing.assert_array_equal(
            window.column(parameter), full.column(parameter)[100:200]
        )


def test_sample_prefix_is_stable_across_population_sizes():
    sampler = DiePopulationSampler(skylake_process_variation())
    small = sampler.sample(300, seed=SEED)
    large = sampler.sample(2500, seed=SEED)
    for parameter in NOMINAL_PARAMETERS:
        np.testing.assert_array_equal(
            small.column(parameter), large.column(parameter)[:300]
        )


def test_population_slice_validates_bounds(population):
    window = population.slice(4, 20)
    assert window.count == 16
    for bad in ((-1, 4), (4, 4), (8, 4), (0, DICE + 1)):
        with pytest.raises(ConfigurationError):
            population.slice(*bad)


# -- shard plans -----------------------------------------------------------------------


def test_shard_plan_bounds_partition_the_population():
    plan = ShardPlan(count=100, shard_size=32)
    assert plan.n_shards == 4
    assert plan.bounds() == ((0, 32), (32, 64), (64, 96), (96, 100))
    with pytest.raises(ConfigurationError):
        plan.shard_bounds(4)


@pytest.mark.parametrize(
    "count, shard_size, needle",
    [
        (0, 16, "empty population"),
        (100, 0, "4096 is a good default"),
        (16, 100, "already streams"),
    ],
)
def test_shard_plan_rejects_infeasible_configurations(count, shard_size, needle):
    with pytest.raises(ConfigurationError, match=needle):
        ShardPlan(count=count, shard_size=shard_size)


# -- exact weighted percentiles --------------------------------------------------------


@given(
    counts=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=12),
    percentile=st.floats(min_value=0.0, max_value=100.0),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_weighted_percentile_matches_numpy_on_multisets(
    counts, percentile, data
):
    values = np.sort(
        np.asarray(
            data.draw(
                st.lists(
                    st.floats(min_value=-50, max_value=50),
                    min_size=len(counts),
                    max_size=len(counts),
                    unique=True,
                )
            )
        )
    )
    expanded = np.repeat(values, counts)
    result = weighted_percentile(
        values, np.asarray(counts), (percentile, 50.0)
    )
    assert result[0] == np.percentile(expanded, percentile)
    assert result[1] == np.percentile(expanded, 50.0)


def test_weighted_percentile_validates_inputs():
    values = np.asarray([1.0, 2.0])
    with pytest.raises(ConfigurationError):
        weighted_percentile(np.asarray([2.0, 1.0]), np.asarray([1, 1]), (50.0,))
    with pytest.raises(ConfigurationError):
        weighted_percentile(values, np.asarray([1, -1]), (50.0,))
    with pytest.raises(ConfigurationError):
        weighted_percentile(values, np.asarray([1, 1]), (101.0,))


# -- histogram-backed quantiles stay within one bin width ------------------------------


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=64
    ),
    bins=st.sampled_from([16, 64, 256]),
)
@settings(max_examples=60, deadline=None)
def test_scalar_accumulator_quantiles_within_bin_width(values, bins):
    spec = HistogramSpec(lo=0.0, hi=10.0, bins=bins)
    accumulator = ScalarAccumulator.from_values(
        spec, np.asarray(values), shard_index=0
    )
    exact = np.percentile(np.asarray(values), [5.0, 50.0, 95.0])
    for estimate, reference in zip(accumulator.quantiles(), exact):
        assert abs(estimate - reference) <= spec.width
    # The exact bits really are exact.
    assert accumulator.mean() == np.asarray(values, dtype=float).mean()
    assert accumulator.summary().minimum == min(values)
    assert accumulator.summary().maximum == max(values)


def test_histogram_spec_validates_range():
    with pytest.raises(ConfigurationError):
        HistogramSpec(lo=1.0, hi=1.0)
    with pytest.raises(ConfigurationError):
        HistogramSpec(lo=0.0, hi=1.0, bins=0)


# -- merge algebra (hypothesis) --------------------------------------------------------


_chunkable = st.lists(
    st.floats(min_value=-4.0, max_value=4.0), min_size=2, max_size=40
)


def _accumulate_chunks(spec, values, cuts):
    """One accumulator per contiguous chunk of *values* split at *cuts*."""
    edges = [0, *sorted(cuts), len(values)]
    chunks = []
    for shard, (start, stop) in enumerate(zip(edges, edges[1:])):
        if stop > start:
            chunks.append(
                ScalarAccumulator.from_values(
                    spec, np.asarray(values[start:stop]), shard_index=shard
                )
            )
    return chunks


@given(values=_chunkable, data=st.data())
@settings(max_examples=60, deadline=None)
def test_scalar_merge_is_order_independent_and_rechunking_invariant(
    values, data
):
    spec = HistogramSpec(lo=-4.0, hi=4.0, bins=32)
    cut_strategy = st.sets(
        st.integers(min_value=1, max_value=len(values) - 1), max_size=3
    )
    first = _accumulate_chunks(spec, values, data.draw(cut_strategy))
    second = _accumulate_chunks(spec, values, data.draw(cut_strategy))

    def reduce_in(order, chunks):
        merged = chunks[order[0]]
        for position in order[1:]:
            merged = merged.merge(chunks[position])
        return merged

    forward = reduce_in(list(range(len(first))), first)
    backward = reduce_in(list(reversed(range(len(first)))), first)
    other_chunking = reduce_in(list(range(len(second))), second)

    # Same multiset of values => identical summaries, regardless of merge
    # order or how the population was cut into shards; the mean is
    # bitwise identical (per-shard partials reduce in shard order).
    assert forward.summary() == backward.summary()
    assert forward.mean() == backward.mean()
    assert forward.summary().quantiles() == other_chunking.summary().quantiles()
    assert forward.count == len(values)


@given(
    matrix=st.lists(
        st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=4),
        min_size=2,
        max_size=5,
    ),
    cut=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_trace_value_counts_merge_commutes_and_matches_full_matrix(matrix, cut):
    full = np.asarray(matrix, dtype=float)
    left = TraceValueCounts.from_matrix(full[:, :cut])
    right = TraceValueCounts.from_matrix(full[:, cut:])
    ab = left.merge(right)
    ba = right.merge(left)
    whole = TraceValueCounts.from_matrix(full)
    assert ab.to_dict() == ba.to_dict() == whole.to_dict()
    assert ab.percentile_traces() == whole.percentile_traces()


@given(
    counts=st.dictionaries(
        st.sampled_from(["premium", "mainstream", "scrap"]),
        st.integers(min_value=0, max_value=1000),
        min_size=1,
        max_size=3,
    )
)
@settings(max_examples=60, deadline=None)
def test_yield_fractions_sum_to_one(counts):
    total = sum(counts.values())
    if total == 0:
        counts[next(iter(counts))] = 1
        total = 1
    result = StreamingBinningResult(
        spec_name="darkgates", counts=counts, count=total
    )
    assert math.isclose(sum(result.yield_fractions.values()), 1.0)
    rebuilt = StreamingBinningResult.from_dict(result.to_dict())
    assert rebuilt == result


# -- engine-level streaming equivalence ------------------------------------------------


def test_engine_streaming_matches_monolithic(monolithic, streamed):
    exact = {
        key: tuple(
            np.percentile(
                np.ascontiguousarray(monolithic.frequencies_hz),
                p,
                axis=1,
            ).tolist()
        )
        for key, p in (("p5", 5.0), ("p50", 50.0), ("p95", 95.0))
    }
    result = streamed.finalize(SHARD)
    assert isinstance(streamed, StreamingCellShard)
    assert isinstance(result, StreamingCellResult)
    assert result.count == DICE and result.n_shards == 3
    assert result.frequency_percentiles_hz == exact

    bounds = result.quantile_error_bounds
    assert bounds["frequency_hz"] == 0.0
    for attribute, matrix, bound_key in (
        ("power_percentiles_w", monolithic.package_powers_w, "power_w"),
        (
            "temperature_percentiles_c",
            monolithic.temperatures_c,
            "temperature_c",
        ),
    ):
        estimates = getattr(result, attribute)
        for key, p in (("p5", 5.0), ("p50", 50.0), ("p95", 95.0)):
            reference = np.percentile(
                np.ascontiguousarray(matrix), p, axis=1
            )
            worst = float(
                np.max(np.abs(np.asarray(estimates[key]) - reference))
            )
            assert worst <= bounds[bound_key]


def test_engine_streaming_merge_is_associative(engine, scenario, population):
    pcode = engine.pcode
    shards = []
    for index, (start, stop) in enumerate(
        ShardPlan(count=DICE, shard_size=SHARD).bounds()
    ):
        traces = engine.run_population(scenario, population.slice(start, stop))
        shards.append(
            condense_population_traces(pcode, scenario, traces, index)
        )
    left = shards[0].merge(shards[1]).merge(shards[2])
    right = shards[0].merge(shards[1].merge(shards[2]))
    swapped = shards[2].merge(shards[0]).merge(shards[1])
    assert (
        left.finalize(SHARD)
        == right.finalize(SHARD)
        == swapped.finalize(SHARD)
        == merge_cell_shards(shards).finalize(SHARD)
    )


def test_run_population_shard_size_error_paths(engine, scenario, population):
    with pytest.raises(ConfigurationError, match="4096 is a good default"):
        engine.run_population(scenario, population, shard_size=0)
    with pytest.raises(ConfigurationError, match="already streams"):
        engine.run_population(scenario, population, shard_size=DICE + 1)


# -- study-level streaming equivalence -------------------------------------------------


def _population_study(method, **kwargs):
    scenario = burst_scenario(
        idle_lead_s=2.0,
        burst_s=6.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.5,
    )
    return Study.over_population(
        ("darkgates",),
        (scenario,),
        skylake_process_variation(),
        count=64,
        tdp_levels_w=(65.0,),
        seed=SEED,
        method=method,
        name=f"streaming-equivalence-{method}",
        **kwargs,
    )


@pytest.fixture(scope="module")
def fast_result():
    return _population_study("fast").run()


@pytest.fixture(scope="module")
def streaming_result():
    return _population_study("streaming", shard_size=16).run()


def test_study_streaming_matches_fast_exact_statistics(
    fast_result, streaming_result
):
    fast_cell = fast_result.cells[0]
    cell = streaming_result.cells[0]
    assert cell.frequency_percentiles_hz == fast_cell.frequency_percentiles_hz
    assert cell.limiting_histogram == fast_cell.limiting_histogram
    nonzero = {k: v for k, v in cell.final_limiting_counts.items() if v}
    assert nonzero == dict(Counter(fast_cell.final_limiting))
    assert streaming_result.bin_yields("darkgates") == fast_result.bin_yields(
        "darkgates"
    )
    assert math.isclose(
        sum(streaming_result.bin_yields("darkgates").values()), 1.0
    )


def test_study_streaming_bounded_statistics_within_bounds(
    fast_result, streaming_result
):
    fast_cell = fast_result.cells[0]
    cell = streaming_result.cells[0]
    bounds = cell.quantile_error_bounds
    sustained = np.percentile(
        np.asarray(fast_cell.sustained_frequency_hz), [5.0, 50.0, 95.0]
    )
    worst = max(
        abs(a - b)
        for a, b in zip(cell.sustained_summary.quantiles(), sustained)
    )
    assert worst <= bounds["sustained_frequency_hz"]
    # Exact bits of the summaries match the per-die tuples exactly.
    assert cell.sustained_summary.mean == np.mean(
        np.asarray(fast_cell.sustained_frequency_hz)
    )
    assert cell.sustained_summary.minimum == min(
        fast_cell.sustained_frequency_hz
    )
    assert cell.sustained_summary.maximum == max(
        fast_cell.sustained_frequency_hz
    )
    # Per-bin sustained quantiles agree with exact per-bin subsets within
    # the bound (bins measured on the base design's candidate table).
    assignments = fast_result.spec_binning("darkgates").assignments
    policy = skylake_binning_policy()
    per_die = np.asarray(fast_cell.sustained_frequency_hz)
    for index, name in enumerate(policy.bin_names):
        subset = per_die[np.asarray(assignments) == index]
        if not subset.size or name not in cell.sustained_by_bin:
            continue
        exact = np.percentile(subset, [5.0, 50.0, 95.0])
        estimate = cell.sustained_by_bin[name].quantiles()
        assert max(
            abs(a - b) for a, b in zip(estimate, exact)
        ) <= bounds["sustained_frequency_hz"]


def test_study_streaming_process_pool_is_identical(streaming_result):
    pooled = _population_study(
        "streaming", shard_size=16, executor="process", max_workers=2
    ).run()
    assert pooled.cells == streaming_result.cells
    assert pooled.binning == streaming_result.binning


def test_streaming_result_json_round_trip(streaming_result):
    text = streaming_result.to_json()
    rebuilt = PopulationResult.from_json(text)
    assert rebuilt == streaming_result
    assert rebuilt.shard_size == 16
    assert rebuilt.method == "streaming"
    # Canonical JSON (sorted keys, no NaN) re-serialises identically.
    assert json.loads(rebuilt.to_json()) == json.loads(text)


def test_streaming_payloads_round_trip_to_dict(streamed):
    result = streamed.finalize(SHARD)
    rebuilt = StreamingCellShard.from_dict(streamed.to_dict())
    assert rebuilt.to_dict() == streamed.to_dict()
    assert rebuilt.finalize(SHARD) == result
    assert StreamingCellResult.from_dict(result.to_dict()) == result
    payload = result.to_dict()
    assert payload["kind"] == "streaming_cell"
    assert "schema_version" in payload
    histogram = TraceHistogram.from_dict(streamed.power.to_dict())
    assert histogram.to_dict() == streamed.power.to_dict()
    counts = TraceCounts.from_dict(streamed.limiting.to_dict())
    assert counts.to_dict() == streamed.limiting.to_dict()
    values = TraceValueCounts.from_dict(streamed.frequency.to_dict())
    assert values.to_dict() == streamed.frequency.to_dict()


def test_streaming_cell_rejects_unkept_quantiles(streamed):
    result = streamed.finalize(SHARD)
    with pytest.raises(ConfigurationError, match="method='fast'"):
        result.sustained_quantiles_ghz(quantiles=(10.0,))


# -- study validation and merge guards -------------------------------------------------


def test_population_study_streaming_requires_shard_size():
    with pytest.raises(ConfigurationError, match="needs a shard_size"):
        _population_study("streaming")


def test_population_study_rejects_shard_size_off_streaming():
    with pytest.raises(ConfigurationError, match="only applies"):
        _population_study("fast", shard_size=16)
    assert "streaming" in PopulationStudy.METHODS


def test_scalar_accumulator_merge_guards():
    spec = HistogramSpec(lo=0.0, hi=1.0, bins=8)
    shard = ScalarAccumulator.from_values(
        spec, np.asarray([0.25, 0.75]), shard_index=0
    )
    other_grid = ScalarAccumulator.from_values(
        HistogramSpec(lo=0.0, hi=2.0, bins=8),
        np.asarray([0.5]),
        shard_index=1,
    )
    with pytest.raises(ConfigurationError, match="different histogram grids"):
        shard.merge(other_grid)
    with pytest.raises(ConfigurationError, match="contributed twice"):
        shard.merge(shard)


def test_cell_shard_merge_rejects_different_cells(engine, scenario, population):
    traces = engine.run_population(scenario, population.slice(0, 8))
    shard = condense_population_traces(engine.pcode, scenario, traces, 0)
    hotter = burst_scenario(
        idle_lead_s=2.0,
        burst_s=8.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.5,
    )
    other_traces = engine.run_population(hotter, population.slice(8, 16))
    other = condense_population_traces(engine.pcode, hotter, other_traces, 1)
    with pytest.raises(ConfigurationError):
        shard.merge(other)
    with pytest.raises(ConfigurationError, match="zero"):
        merge_cell_shards([])


def test_merge_binning_shards_guards():
    with pytest.raises(ConfigurationError, match="zero"):
        merge_binning_shards("darkgates", [], 0)
    with pytest.raises(ConfigurationError, match="alphabet"):
        merge_binning_shards("darkgates", [{"a": 1}, {"b": 1}], 2)
    with pytest.raises(ConfigurationError, match="missing or duplicated"):
        merge_binning_shards("darkgates", [{"a": 1}, {"a": 1}], 3)


def test_run_binning_shard_matches_population_prefix():
    spec = resolve_spec("darkgates")
    model = skylake_process_variation()
    policy = skylake_binning_policy()
    first = run_binning_shard(spec, model, 256, SEED, 0, 64, policy)
    # The same 64 dice binned as shard 0 of a differently-sized population.
    second = run_binning_shard(spec, model, 4096, SEED, 0, 64, policy)
    assert first == second
    assert sum(first.values()) == 64


def test_run_cell_shard_is_the_study_task(scenario):
    spec = resolve_spec("darkgates").variant(tdp_w=65.0)
    shard = run_cell_shard(
        spec,
        scenario,
        skylake_process_variation(),
        32,
        SEED,
        0,
        16,
        skylake_binning_policy(),
        binning_spec=resolve_spec("darkgates"),
    )
    assert isinstance(shard, StreamingCellShard)
    assert shard.count == 16
    assert shard.spec == spec
