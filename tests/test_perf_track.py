"""Unit tests for the perf-track merge/regression gate (benchmarks/perf_track.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_track", Path(__file__).parent.parent / "benchmarks" / "perf_track.py"
)
perf_track = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(perf_track)


def _write_artifacts(output_dir: Path) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    (output_dir / "droop_benchmark.json").write_text(
        json.dumps({"speedup_scan_vs_reference": 40.0, "steps": 8000})
    )
    (output_dir / "dynamics_benchmark.json").write_text(
        json.dumps({"speedup_batched_vs_reference": 12.0, "runs": 192})
    )


def test_benchmark_name_strips_suffix():
    assert perf_track.benchmark_name(Path("droop_benchmark.json")) == "droop"
    assert perf_track.benchmark_name(Path("other.json")) == "other"


def test_headline_speedup_picks_speedup_key():
    assert perf_track.headline_speedup({"speedup_x_vs_y": 3.0, "steps": 9}) == 3.0
    assert perf_track.headline_speedup({"steps": 9}) is None


def test_load_artifacts_skips_summary(tmp_path):
    _write_artifacts(tmp_path)
    (tmp_path / "bench_summary.json").write_text("{}")
    artifacts = perf_track.load_artifacts(tmp_path)
    assert sorted(artifacts) == ["droop", "dynamics"]


def test_build_summary_shape():
    summary = perf_track.build_summary(
        {"droop": {"speedup_scan_vs_reference": 40.0}},
        commit="abc123",
        generated_at="2026-07-30T00:00:00+00:00",
    )
    assert summary["commit"] == "abc123"
    assert summary["generated_at"] == "2026-07-30T00:00:00+00:00"
    assert summary["benchmarks"]["droop"]["speedup"] == 40.0


@pytest.mark.parametrize(
    "current, baseline, n_failures",
    [
        (12.0, 13.0, 0),  # mild noise: fine
        (7.0, 13.0, 0),  # just above the 2x floor (6.5): fine
        (6.0, 13.0, 1),  # regressed more than 2x: gate
    ],
)
def test_check_regressions_thresholds(current, baseline, n_failures):
    summary = perf_track.build_summary(
        {"dynamics": {"speedup_batched_vs_reference": current}},
        commit="c",
        generated_at="t",
    )
    failures = perf_track.check_regressions(
        summary, {"dynamics": {"speedup": baseline}}
    )
    assert len(failures) == n_failures


def test_check_regressions_missing_benchmark_fails():
    summary = perf_track.build_summary({}, commit="c", generated_at="t")
    failures = perf_track.check_regressions(summary, {"dynamics": {"speedup": 13.0}})
    assert len(failures) == 1
    assert "no artifact" in failures[0]


def test_check_regressions_ungated_artifact_fails():
    summary = perf_track.build_summary(
        {"fresh": {"speedup_new_vs_old": 9.0}}, commit="c", generated_at="t"
    )
    failures = perf_track.check_regressions(summary, {})
    assert len(failures) == 1
    assert "no baseline entry" in failures[0]


def test_headline_memory_picks_peak_mb_key():
    assert perf_track.headline_memory({"peak_mb": 26.5, "speedup": 3.0}) == 26.5
    # The monolithic reference gauge must not win the scan.
    assert (
        perf_track.headline_memory({"monolithic_peak_mb": 420.0, "peak_mb": 26.5})
        == 26.5
    )
    assert perf_track.headline_memory({"speedup": 3.0}) is None


@pytest.mark.parametrize(
    "current, baseline, n_failures",
    [
        (30.0, 26.0, 0),  # mild growth: fine
        (50.0, 26.0, 0),  # just below the 2x ceiling (52.0): fine
        (60.0, 26.0, 1),  # grew more than 2x: gate
    ],
)
def test_check_regressions_memory_ceiling(current, baseline, n_failures):
    summary = perf_track.build_summary(
        {"population": {"speedup_streaming": 9.0, "peak_mb": current}},
        commit="c",
        generated_at="t",
    )
    failures = perf_track.check_regressions(
        summary, {"population": {"speedup": 9.0, "peak_mb": baseline}}
    )
    assert len(failures) == n_failures
    if n_failures:
        assert "peak memory" in failures[0]


def test_check_regressions_missing_memory_gauge_fails():
    summary = perf_track.build_summary(
        {"population": {"speedup_streaming": 9.0}}, commit="c", generated_at="t"
    )
    failures = perf_track.check_regressions(
        summary, {"population": {"speedup": 9.0, "peak_mb": 26.0}}
    )
    assert len(failures) == 1
    assert "peak_mb" in failures[0]


def test_check_regressions_timing_only_benchmarks_not_memory_gated():
    summary = perf_track.build_summary(
        {"droop": {"speedup_scan_vs_reference": 40.0}}, commit="c", generated_at="t"
    )
    failures = perf_track.check_regressions(summary, {"droop": {"speedup": 40.0}})
    assert failures == []


def test_main_update_baseline_records_memory_gauge(tmp_path):
    output_dir = tmp_path / "output"
    output_dir.mkdir(parents=True)
    (output_dir / "population_benchmark.json").write_text(
        json.dumps({"speedup_fast_vs_reference": 60.0, "peak_mb": 26.5})
    )
    baseline = tmp_path / "baseline.json"
    argv = [
        "--output-dir", str(output_dir),
        "--output", str(output_dir / "bench_summary.json"),
        "--baseline", str(baseline),
        "--update-baseline",
    ]
    assert perf_track.main(argv) == 0
    written = json.loads(baseline.read_text())
    assert written == {"population": {"speedup": 60.0, "peak_mb": 26.5}}


def test_check_regressions_missing_metric_fails():
    summary = perf_track.build_summary(
        {"dynamics": {"runs": 3}}, commit="c", generated_at="t"
    )
    failures = perf_track.check_regressions(summary, {"dynamics": {"speedup": 13.0}})
    assert len(failures) == 1
    assert "no speedup metric" in failures[0]


def test_main_update_baseline_then_gate(tmp_path, capsys):
    output_dir = tmp_path / "output"
    _write_artifacts(output_dir)
    baseline = tmp_path / "baseline.json"
    summary = output_dir / "bench_summary.json"
    argv = [
        "--output-dir", str(output_dir),
        "--output", str(summary),
        "--baseline", str(baseline),
    ]
    assert perf_track.main(argv + ["--update-baseline"]) == 0
    written = json.loads(baseline.read_text())
    assert written == {"droop": {"speedup": 40.0}, "dynamics": {"speedup": 12.0}}

    # Same numbers: the gate passes and the summary is commit-stamped.
    assert perf_track.main(argv) == 0
    payload = json.loads(summary.read_text())
    assert set(payload) == {"commit", "generated_at", "benchmarks"}
    assert payload["benchmarks"]["dynamics"]["speedup"] == 12.0

    # A >2x regression fails the gate.
    (output_dir / "dynamics_benchmark.json").write_text(
        json.dumps({"speedup_batched_vs_reference": 4.0})
    )
    assert perf_track.main(argv) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_main_requires_artifacts_and_baseline(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    argv = ["--output-dir", str(empty)]
    assert perf_track.main(argv) == 2  # no artifacts

    _write_artifacts(empty)
    assert (
        perf_track.main(
            argv
            + [
                "--output", str(tmp_path / "s.json"),
                "--baseline", str(tmp_path / "missing.json"),
            ]
        )
        == 2
    )  # no baseline yet
