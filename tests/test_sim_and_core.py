"""Tests for the simulation engine, residency tracker, and the DarkGates core API."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.darkgates import SystemComparison
from repro.core.spec import get_spec
from repro.core.overhead import darkgates_overheads
from repro.pmu.cstates import PackageCState
from repro.pmu.dvfs import CpuDemand
from repro.sim.engine import SimulationEngine
from repro.sim.residency import ResidencyTracker
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.phases import bursty_idle_trace, sustained_compute_trace
from repro.workloads.spec import spec_benchmark, spec_cpu2006_base_suite


# -- system builders -------------------------------------------------------------------------


def test_darkgates_system_is_bypassed_with_c8(darkgates_91w):
    assert darkgates_91w.bypass_mode
    assert darkgates_91w.deepest_package_cstate() is PackageCState.C8


def test_baseline_system_is_gated_with_c7(baseline_91w):
    assert not baseline_91w.bypass_mode
    assert baseline_91w.deepest_package_cstate() is PackageCState.C7


def test_darkgates_c7_limited_system_configuration():
    limited = get_spec("darkgates+c7", tdp_w=91.0).build()
    assert limited.bypass_mode
    assert limited.deepest_package_cstate() is PackageCState.C7


def test_darkgates_reliability_margin_larger_at_low_tdp():
    low = get_spec("darkgates", tdp_w=35.0).build()
    high = get_spec("darkgates", tdp_w=91.0).build()
    assert (
        low.guardband_model.reliability_margin_v
        > high.guardband_model.reliability_margin_v
    )
    assert high.guardband_model.reliability_margin_v > 0.0


def test_darkgates_without_reliability_margin():
    plain = get_spec("darkgates", tdp_w=91.0, apply_reliability_guardband=False).build()
    assert plain.guardband_model.reliability_margin_v == 0.0


# -- simulation engine: CPU -----------------------------------------------------------------------


def test_engine_cpu_run_reports_positive_metrics(darkgates_91w):
    engine = SimulationEngine(darkgates_91w)
    result = engine.run_cpu_workload(spec_benchmark("416.gamess"))
    assert result.relative_performance > 0
    assert result.frequency_hz >= 3.5e9
    assert result.package_power_w > 10.0


def test_engine_rejects_oversized_workload(darkgates_91w):
    engine = SimulationEngine(darkgates_91w)
    with pytest.raises(ConfigurationError):
        engine.run_cpu_workload(spec_benchmark("416.gamess", active_cores=16))


def test_engine_memory_bound_workload_insensitive_to_config(darkgates_91w, baseline_91w):
    workload = spec_benchmark("410.bwaves")
    darkgates_result = SimulationEngine(darkgates_91w).run_cpu_workload(workload)
    baseline_result = SimulationEngine(baseline_91w).run_cpu_workload(workload)
    assert darkgates_result.improvement_over(baseline_result) < 0.02


def test_engine_compute_bound_workload_benefits_from_darkgates(
    darkgates_91w, baseline_91w
):
    workload = spec_benchmark("444.namd")
    darkgates_result = SimulationEngine(darkgates_91w).run_cpu_workload(workload)
    baseline_result = SimulationEngine(baseline_91w).run_cpu_workload(workload)
    assert darkgates_result.improvement_over(baseline_result) > 0.03


# -- simulation engine: graphics and energy -----------------------------------------------------------


def test_engine_graphics_run(darkgates_91w):
    engine = SimulationEngine(darkgates_91w)
    result = engine.run_graphics_workload(three_dmark_suite()[0])
    assert 300e6 <= result.graphics_frequency_hz <= 1150e6
    assert result.relative_fps > 0


def test_engine_energy_scenario_average_power(darkgates_91w, baseline_91w):
    scenario = rmt_scenario()
    darkgates_result = SimulationEngine(darkgates_91w).run_energy_scenario(scenario)
    baseline_result = SimulationEngine(baseline_91w).run_energy_scenario(scenario)
    assert 0.0 < darkgates_result.average_power_w < 5.0
    assert 0.0 < baseline_result.average_power_w < 5.0
    # Contributions of the phases must add up.
    assert darkgates_result.average_power_w == pytest.approx(
        sum(p.contribution_w for p in darkgates_result.phases)
    )


def test_engine_energy_scenario_limit_flag(darkgates_91w):
    result = SimulationEngine(darkgates_91w).run_energy_scenario(energy_star_scenario())
    assert result.meets_limit == (result.average_power_w <= result.average_power_limit_w)


# -- residency tracker --------------------------------------------------------------------------------


def test_residency_deepest_state_for_long_idle(darkgates_91w, baseline_91w):
    darkgates_tracker = ResidencyTracker(darkgates_91w)
    baseline_tracker = ResidencyTracker(baseline_91w)
    assert darkgates_tracker.state_for_idle_duration(1.0) is PackageCState.C8
    assert baseline_tracker.state_for_idle_duration(1.0) is PackageCState.C7


def test_residency_shallow_state_for_short_idle(darkgates_91w):
    tracker = ResidencyTracker(darkgates_91w)
    assert tracker.state_for_idle_duration(1e-4).depth <= 3


def test_residency_replay_bursty_trace(darkgates_91w):
    tracker = ResidencyTracker(darkgates_91w)
    report = tracker.replay(bursty_idle_trace())
    assert report.residency("C0") == pytest.approx(0.01, rel=0.1)
    assert report.residency("C8") > 0.9
    assert report.average_power_w < 5.0
    assert report.energy_j == pytest.approx(report.average_power_w * report.duration_s)


def test_residency_replay_compute_trace(darkgates_91w):
    tracker = ResidencyTracker(darkgates_91w)
    report = tracker.replay(sustained_compute_trace(duration_s=10.0))
    assert report.residency("C0") == pytest.approx(1.0)
    assert report.average_power_w > 20.0


# -- SystemComparison (the headline API) ----------------------------------------------------------------


def test_comparison_compute_bound_gains_more_than_memory_bound(comparison_91w):
    gamess = comparison_91w.compare_cpu(spec_benchmark("416.gamess"))
    bwaves = comparison_91w.compare_cpu(spec_benchmark("410.bwaves"))
    assert gamess.performance_improvement > bwaves.performance_improvement
    assert gamess.frequency_improvement > 0


def test_comparison_average_spec_gain_in_paper_range(comparison_91w):
    average = comparison_91w.average_cpu_improvement(spec_cpu2006_base_suite())
    # Paper: 4.6% average at 91 W; accept a generous band around it.
    assert 0.02 <= average <= 0.09


def test_comparison_graphics_unaffected_at_91w(comparison_91w):
    degradation = comparison_91w.average_graphics_degradation(three_dmark_suite())
    assert degradation <= 0.005


def test_comparison_graphics_slightly_degraded_at_35w(comparison_35w):
    degradation = comparison_35w.average_graphics_degradation(three_dmark_suite())
    assert 0.0 < degradation <= 0.06


def test_comparison_energy_scenarios(comparison_91w):
    result = comparison_91w.compare_energy(rmt_scenario())
    # DarkGates+C8 and the baseline both reduce power substantially versus
    # DarkGates limited to C7 (paper Fig. 10).
    assert result.darkgates_c8_reduction > 0.4
    assert result.baseline_c7_reduction > 0.4
    # DarkGates+C7 misses the limit; DarkGates+C8 meets it.
    assert not result.darkgates_c7.meets_limit
    assert result.darkgates_c8.meets_limit


def test_comparison_summary_mentions_all_three_configs(comparison_91w):
    summary = comparison_91w.summary()
    assert set(summary) == {"darkgates", "baseline", "darkgates_c7_limited"}


def test_comparison_rejects_empty_suite(comparison_91w):
    with pytest.raises(ConfigurationError):
        comparison_91w.average_cpu_improvement([])


def test_comparison_rejects_bad_tdp():
    with pytest.raises(ConfigurationError):
        SystemComparison(tdp_w=-1.0)


# -- overheads (Section 5) ---------------------------------------------------------------------------------


def test_overheads_match_section5_claims():
    overheads = darkgates_overheads()
    assert overheads.firmware_bytes == 300
    assert overheads.firmware_area_below_claim
    assert not overheads.requires_new_package
    # The power-gates the baseline carries cost a few percent of core area.
    assert 0.01 <= overheads.power_gate_core_area_fraction <= 0.10
    assert overheads.power_gate_die_area_fraction < 0.05


# -- simulation engine: transient droop scenarios -----------------------------------------------


def test_engine_runs_transient_scenario(darkgates_91w):
    from repro.pdn.transients import TransientScenario, core_wake_trace
    from repro.sim.metrics import TransientRunResult

    scenario = TransientScenario.from_trace(core_wake_trace(duration_s=1e-6))
    result = SimulationEngine(darkgates_91w).run(scenario)
    assert isinstance(result, TransientRunResult)
    assert result.scenario_name == "core_wake"
    assert result.worst_droop_v > 0.0
    assert result.transient_overshoot_v >= 0.0
    assert result.minimum_voltage_v < result.nominal_voltage_v
    # The rail defaults to the firmware's resolved single-core voltage.
    assert 0.5 < result.nominal_voltage_v < 1.5
    assert result.primary_metric == result.worst_droop_v


def test_engine_transient_fig6_ordering(darkgates_91w, baseline_91w):
    # The bypassed (DarkGates) network must droop less than the gated one
    # for the same event at the same rail (Fig. 6).
    from repro.pdn.transients import TransientScenario, core_wake_trace

    scenario = TransientScenario.from_trace(
        core_wake_trace(duration_s=1e-6), nominal_voltage_v=1.0
    )
    gated = SimulationEngine(baseline_91w).run(scenario)
    bypassed = SimulationEngine(darkgates_91w).run(scenario)
    assert gated.worst_droop_v > bypassed.worst_droop_v
    assert bypassed.worsening_over(gated) < 0.0


def test_engine_transient_result_round_trips(darkgates_91w):
    from repro.pdn.transients import TransientScenario, avx_burst_trace
    from repro.sim.metrics import RunResult

    scenario = TransientScenario.from_trace(avx_burst_trace())
    result = SimulationEngine(darkgates_91w).run(scenario)
    assert RunResult.from_dict(result.to_dict()) == result


# -- simulation engine: idle-wake power bugfix --------------------------------------------------


def test_active_wake_power_uses_resolved_rail_not_1v(darkgates_91w):
    from repro.power.leakage import NOMINAL_SILICON_TEMPERATURE_C
    from repro.workloads.descriptors import ResidencyPhase

    engine = SimulationEngine(darkgates_91w)
    phase = ResidencyPhase(
        name="wake", fraction=1.0, mode="active", active_power_hint_w=5.0
    )
    power = engine._phase_power_w(phase)
    rail = darkgates_91w.wake_rail_voltage_v(active_cores=1)
    assert rail < 1.0  # the low-frequency wake rail sits below 1 V
    # The old implementation charged the dark cores at a hardcoded 1.0 V.
    old_extra = sum(
        core.leakage.power_w(1.0, NOMINAL_SILICON_TEMPERATURE_C)
        for core in darkgates_91w.processor.die.cores[1:]
    )
    expected_extra = sum(
        core.leakage.power_w(rail, NOMINAL_SILICON_TEMPERATURE_C)
        for core in darkgates_91w.processor.die.cores[1:]
    )
    assert power == pytest.approx(5.0 + expected_extra)
    assert power < 5.0 + old_extra


def test_active_wake_power_scales_with_woken_cores(darkgates_91w):
    from repro.workloads.descriptors import ResidencyPhase

    engine = SimulationEngine(darkgates_91w)
    core_count = darkgates_91w.processor.core_count
    powers = [
        engine._phase_power_w(
            ResidencyPhase(
                name="wake",
                fraction=1.0,
                mode="active",
                active_power_hint_w=5.0,
                active_cores=woken,
            )
        )
        for woken in range(1, core_count + 1)
    ]
    # More woken cores leave fewer dark cores leaking on top of the hint.
    assert all(a > b for a, b in zip(powers, powers[1:]))
    # All cores woken: nothing leaks beyond the hint.
    assert powers[-1] == pytest.approx(5.0)


def test_active_wake_power_gated_part_pays_only_the_hint(baseline_91w):
    from repro.workloads.descriptors import ResidencyPhase

    engine = SimulationEngine(baseline_91w)
    phase = ResidencyPhase(
        name="wake", fraction=1.0, mode="active", active_power_hint_w=5.0
    )
    assert engine._phase_power_w(phase) == pytest.approx(5.0)


def test_scenario_phase_cstate_names_are_case_insensitive(darkgates_91w):
    from repro.workloads.descriptors import ResidencyPhase

    engine = SimulationEngine(darkgates_91w)
    lower = ResidencyPhase(
        name="idle", fraction=1.0, mode="package_idle", package_cstate="c8"
    )
    upper = ResidencyPhase(
        name="idle", fraction=1.0, mode="package_idle", package_cstate="C8"
    )
    deepest = ResidencyPhase(
        name="idle", fraction=1.0, mode="package_idle", package_cstate="Deepest"
    )
    assert engine._phase_power_w(lower) == engine._phase_power_w(upper)
    assert engine._phase_power_w(deepest) == engine._phase_power_w(upper)
