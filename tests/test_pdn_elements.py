"""Unit tests for PDN elements, decap banks, power-gates, and the VR model."""

from __future__ import annotations

import math

import pytest

from repro.common.errors import ConfigurationError, ConstraintViolation
from repro.pdn.decap import (
    CapacitorBank,
    board_bulk_bank,
    die_mim_bank,
    package_decap_bank,
)
from repro.pdn.elements import Capacitor, Inductor, Resistor
from repro.pdn.powergate import PowerGate
from repro.pdn.vr import VoltageRegulator


# -- resistor ---------------------------------------------------------------------------


def test_resistor_admittance_is_frequency_independent():
    resistor = Resistor(resistance_ohm=2.0)
    assert resistor.admittance(1e3) == resistor.admittance(1e8)
    assert resistor.admittance(1e6) == pytest.approx(0.5 + 0j)


def test_resistor_dc_resistance():
    assert Resistor(resistance_ohm=1.8e-3).dc_resistance() == pytest.approx(1.8e-3)


def test_resistor_rejects_non_positive():
    with pytest.raises(ConfigurationError):
        Resistor(resistance_ohm=0.0)


# -- inductor ---------------------------------------------------------------------------


def test_inductor_admittance_falls_with_frequency():
    inductor = Inductor(inductance_h=1e-9)
    low = abs(inductor.admittance(2 * math.pi * 1e5))
    high = abs(inductor.admittance(2 * math.pi * 1e8))
    assert low > high


def test_inductor_with_dcr_has_finite_dc_admittance():
    inductor = Inductor(inductance_h=1e-9, series_resistance_ohm=1e-3)
    assert abs(inductor.admittance(0.0)) == pytest.approx(1000.0)


def test_ideal_inductor_is_dc_short():
    inductor = Inductor(inductance_h=1e-9)
    assert abs(inductor.admittance(0.0)) > 1e11
    assert inductor.dc_resistance() == 0.0


def test_inductor_rejects_negative_dcr():
    with pytest.raises(ConfigurationError):
        Inductor(inductance_h=1e-9, series_resistance_ohm=-1.0)


# -- capacitor ---------------------------------------------------------------------------


def test_capacitor_blocks_dc():
    capacitor = Capacitor(capacitance_f=1e-6)
    assert capacitor.admittance(0.0) == 0.0
    assert capacitor.dc_resistance() == math.inf


def test_capacitor_admittance_rises_below_resonance():
    capacitor = Capacitor(capacitance_f=1e-6, esr_ohm=1e-3, esl_h=1e-12)
    low = abs(capacitor.admittance(2 * math.pi * 1e4))
    mid = abs(capacitor.admittance(2 * math.pi * 1e6))
    assert mid > low


def test_capacitor_self_resonance():
    capacitor = Capacitor(capacitance_f=1e-6, esl_h=1e-9)
    expected = 1.0 / (2 * math.pi * math.sqrt(1e-6 * 1e-9))
    assert capacitor.self_resonance_hz() == pytest.approx(expected)


def test_ideal_capacitor_has_infinite_self_resonance():
    assert Capacitor(capacitance_f=1e-6).self_resonance_hz() == math.inf


def test_capacitor_impedance_at_resonance_equals_esr():
    capacitor = Capacitor(capacitance_f=1e-6, esr_ohm=5e-3, esl_h=1e-9)
    omega = 2 * math.pi * capacitor.self_resonance_hz()
    impedance = 1.0 / capacitor.admittance(omega)
    assert abs(impedance) == pytest.approx(5e-3, rel=1e-6)


# -- capacitor banks ----------------------------------------------------------------------


def test_bank_aggregates_capacitance_and_divides_parasitics():
    bank = CapacitorBank(
        name="test", unit_capacitance_f=1e-6, unit_esr_ohm=10e-3, unit_esl_h=1e-9, count=10
    )
    assert bank.total_capacitance_f == pytest.approx(10e-6)
    assert bank.effective_esr_ohm == pytest.approx(1e-3)
    assert bank.effective_esl_h == pytest.approx(0.1e-9)


def test_bank_as_capacitor_matches_aggregates():
    bank = package_decap_bank()
    lumped = bank.as_capacitor()
    assert lumped.capacitance_f == pytest.approx(bank.total_capacitance_f)
    assert lumped.esr_ohm == pytest.approx(bank.effective_esr_ohm)


def test_bank_split_reduces_count():
    bank = die_mim_bank(count=4000)
    split = bank.split(4)
    assert split.count == 1000
    assert split.total_capacitance_f == pytest.approx(bank.total_capacitance_f / 4)


def test_bank_split_never_drops_below_one_unit():
    bank = CapacitorBank(
        name="tiny", unit_capacitance_f=1e-6, unit_esr_ohm=1e-3, unit_esl_h=1e-12, count=2
    )
    assert bank.split(10).count == 1


def test_bank_scaled():
    bank = board_bulk_bank(count=10)
    assert bank.scaled(0.5).count == 5
    assert bank.scaled(2.0).count == 20


def test_bank_rejects_zero_count():
    with pytest.raises(ConfigurationError):
        CapacitorBank(
            name="bad", unit_capacitance_f=1e-6, unit_esr_ohm=0.0, unit_esl_h=0.0, count=0
        )


def test_default_banks_have_sensible_ordering():
    # Board bulk >> package decap >> die MIM unit values, but die MIM has the
    # lowest inductance (it sits on the die).
    board = board_bulk_bank()
    package = package_decap_bank()
    die = die_mim_bank()
    assert board.total_capacitance_f > package.total_capacitance_f > die.total_capacitance_f
    assert die.effective_esl_h < package.effective_esl_h < board.effective_esl_h


# -- power gate ---------------------------------------------------------------------------


def test_power_gate_sized_for_core_area_tradeoff():
    small = PowerGate.sized_for_core("pg", core_area_mm2=8.5, area_overhead_fraction=0.02)
    large = PowerGate.sized_for_core("pg", core_area_mm2=8.5, area_overhead_fraction=0.08)
    assert small.area_mm2 < large.area_mm2
    assert small.on_resistance_ohm > large.on_resistance_ohm


def test_power_gate_resistance_inverse_to_area():
    gate_a = PowerGate.sized_for_core("a", core_area_mm2=8.5, area_overhead_fraction=0.03)
    gate_b = PowerGate.sized_for_core("b", core_area_mm2=8.5, area_overhead_fraction=0.06)
    assert gate_a.on_resistance_ohm == pytest.approx(2 * gate_b.on_resistance_ohm, rel=1e-6)


def test_power_gate_ir_drop():
    gate = PowerGate(name="pg", on_resistance_ohm=0.5e-3, area_mm2=0.3)
    assert gate.ir_drop_v(30.0) == pytest.approx(15e-3)


def test_power_gate_residual_leakage():
    gate = PowerGate(name="pg", on_resistance_ohm=0.5e-3, area_mm2=0.3)
    assert gate.leakage_when_gated_w(1.0) == pytest.approx(gate.residual_leakage_fraction)
    assert gate.leakage_when_gated_w(1.0) < 0.1


def test_power_gate_wakeup_latency_in_nanoseconds_range():
    gate = PowerGate.sized_for_core("pg", core_area_mm2=8.5)
    assert 1e-9 <= gate.wakeup_latency_s <= 100e-9


def test_power_gate_area_overhead_fraction():
    gate = PowerGate.sized_for_core("pg", core_area_mm2=10.0, area_overhead_fraction=0.05)
    assert gate.area_overhead_fraction(10.0) == pytest.approx(0.05)


def test_power_gate_branch_element_is_resistor():
    gate = PowerGate.sized_for_core("pg", core_area_mm2=8.5)
    assert gate.as_branch_element().resistance_ohm == pytest.approx(gate.on_resistance_ohm)


# -- voltage regulator -----------------------------------------------------------------------


def test_vr_loadline_droop():
    vr = VoltageRegulator(name="mbvr", loadline_ohm=2e-3)
    assert vr.output_voltage(1.2, 50.0) == pytest.approx(1.1)


def test_vr_required_setpoint_inverts_loadline():
    vr = VoltageRegulator(name="mbvr", loadline_ohm=1.8e-3)
    setpoint = vr.required_setpoint(1.05, 40.0)
    assert vr.output_voltage(setpoint, 40.0) == pytest.approx(1.05)


def test_vr_loadline_in_datasheet_range():
    vr = VoltageRegulator(name="mbvr", loadline_ohm=1.8e-3)
    assert 1.6e-3 <= vr.loadline_ohm <= 2.4e-3


def test_vr_edc_enforcement():
    vr = VoltageRegulator(name="mbvr", loadline_ohm=2e-3, edc_a=140.0)
    with pytest.raises(ConstraintViolation):
        vr.check_current(150.0)
    assert vr.check_current(139.0) == pytest.approx(139.0)


def test_vr_tdc_enforcement():
    vr = VoltageRegulator(name="mbvr", loadline_ohm=2e-3, tdc_a=100.0)
    with pytest.raises(ConstraintViolation):
        vr.check_sustained_current(101.0)


def test_vr_setpoint_clamping():
    vr = VoltageRegulator(name="mbvr", loadline_ohm=2e-3, vmax_v=1.52, min_voltage_v=0.55)
    assert vr.clamp_setpoint(2.0) == pytest.approx(1.52)
    assert vr.clamp_setpoint(0.1) == pytest.approx(0.55)
    assert vr.is_setpoint_allowed(1.0)
    assert not vr.is_setpoint_allowed(1.6)
