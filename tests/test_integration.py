"""Integration tests: the paper's headline claims, end to end.

These tests run the full stack (PDN -> guardband -> firmware -> workloads ->
comparison) and check the qualitative results of the evaluation section.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_fig4_impedance_profiles,
    run_fig8_spec_tdp_sweep,
    run_fig9_graphics_degradation,
    run_fig10_energy_efficiency,
)
from repro.core.darkgates import SystemComparison
from repro.soc.skus import SKYLAKE_TDP_LEVELS_W
from repro.workloads.spec import spec_cpu2006_base_suite, spec_cpu2006_rate_suite


def test_headline_claim_impedance_roughly_halves():
    """Observation 2: power-gates double the PDN impedance."""
    result = run_fig4_impedance_profiles(points_per_decade=20)
    assert 1.5 <= result.mean_impedance_ratio <= 3.0
    assert result.gated.peak_magnitude_ohm() > result.bypassed.peak_magnitude_ohm()


def test_headline_claim_spec_improves_at_every_tdp():
    """Fig. 8: DarkGates improves SPEC base and rate at every TDP level."""
    result = run_fig8_spec_tdp_sweep()
    assert result.tdp_levels_w == SKYLAKE_TDP_LEVELS_W
    for base, rate in zip(result.base_improvements, result.rate_improvements):
        assert base > 0.0
        assert rate > 0.0
        assert base < 0.12
        assert rate < 0.12


def test_headline_claim_91w_average_near_paper():
    """Fig. 7/8: ~4.6% average SPEC base improvement at 91 W."""
    comparison = SystemComparison(91.0)
    average = comparison.average_cpu_improvement(spec_cpu2006_base_suite())
    assert 0.025 <= average <= 0.08


def test_headline_claim_graphics_only_hurt_when_thermally_limited():
    """Fig. 9: 3DMark unaffected at >= 45 W, small loss at 35 W."""
    result = run_fig9_graphics_degradation()
    degradation = dict(zip(result.tdp_levels_w, result.average_degradation))
    assert degradation[35.0] > 0.0
    assert degradation[35.0] <= 0.06
    assert degradation[65.0] == pytest.approx(0.0, abs=1e-6)
    assert degradation[91.0] == pytest.approx(0.0, abs=1e-6)
    assert degradation[35.0] >= degradation[45.0]


def test_headline_claim_energy_limits_need_c8():
    """Fig. 10: DarkGates+C7 misses the energy limits, DarkGates+C8 meets them."""
    result = run_fig10_energy_efficiency()
    for scenario in ("ENERGY STAR", "RMT"):
        darkgates_c7_ok, darkgates_c8_ok, baseline_ok = result.limit_compliance[scenario]
        assert not darkgates_c7_ok
        assert darkgates_c8_ok
        assert baseline_ok


def test_headline_claim_rmt_reduction_larger_than_energy_star():
    """Fig. 10: the RMT reductions are much larger than the ENERGY STAR ones."""
    result = run_fig10_energy_efficiency()
    assert result.reductions["RMT"][0] > result.reductions["ENERGY STAR"][0]
    assert result.reductions["RMT"][1] > result.reductions["ENERGY STAR"][1]


def test_rate_mode_uses_all_cores_and_still_benefits():
    comparison = SystemComparison(91.0)
    rate_gain = comparison.average_cpu_improvement(spec_cpu2006_rate_suite(4))
    assert rate_gain > 0.0


def test_comparisons_are_deterministic():
    first = SystemComparison(65.0).average_cpu_improvement(spec_cpu2006_base_suite())
    second = SystemComparison(65.0).average_cpu_improvement(spec_cpu2006_base_suite())
    assert first == pytest.approx(second)
