"""Unit tests for workload descriptors and the SPEC / 3DMark / energy suites."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.descriptors import (
    CpuWorkload,
    EnergyScenario,
    GraphicsWorkload,
    ResidencyPhase,
)
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.graphics import three_dmark_suite
from repro.workloads.phases import PhaseTrace, TracePhase, bursty_idle_trace, sustained_compute_trace
from repro.workloads.power_virus import power_virus_workload, tdp_sizing_workload
from repro.workloads.spec import (
    average_scalability,
    spec_benchmark,
    spec_benchmark_names,
    spec_cpu2006_base_suite,
    spec_cpu2006_rate_suite,
    spec_cpu2006_suite,
)


# -- CPU workload descriptor -----------------------------------------------------------------


def test_cpu_workload_performance_model_improves_with_frequency():
    workload = CpuWorkload(
        name="x", active_cores=1, activity=0.6, memory_intensity=0.2, frequency_scalability=0.8
    )
    assert workload.relative_performance(4e9) > workload.relative_performance(3e9)


def test_cpu_workload_scalability_bounds_speedup():
    scalable = CpuWorkload(
        name="s", active_cores=1, activity=0.7, memory_intensity=0.0, frequency_scalability=1.0
    )
    flat = CpuWorkload(
        name="f", active_cores=1, activity=0.5, memory_intensity=0.9, frequency_scalability=0.0
    )
    assert scalable.speedup(3.5e9, 4.2e9) == pytest.approx(4.2 / 3.5)
    assert flat.speedup(3.5e9, 4.2e9) == pytest.approx(1.0)


def test_cpu_workload_small_delta_approximation():
    # For small frequency deltas the gain is about scalability * df/f.
    workload = CpuWorkload(
        name="x", active_cores=1, activity=0.6, memory_intensity=0.2,
        frequency_scalability=0.6, reference_frequency_hz=4.0e9,
    )
    gain = workload.speedup(4.0e9, 4.1e9) - 1.0
    assert gain == pytest.approx(0.6 * 0.1 / 4.0, rel=0.1)


def test_cpu_workload_with_active_cores():
    base = spec_benchmark("416.gamess")
    rate = base.with_active_cores(4)
    assert rate.active_cores == 4
    assert rate.frequency_scalability == base.frequency_scalability


def test_cpu_workload_validation():
    with pytest.raises(ConfigurationError):
        CpuWorkload(name="bad", active_cores=0, activity=0.5, memory_intensity=0.5,
                    frequency_scalability=0.5)
    with pytest.raises(ConfigurationError):
        CpuWorkload(name="bad", active_cores=1, activity=0.5, memory_intensity=0.5,
                    frequency_scalability=0.5, category="weird")


# -- SPEC suite ---------------------------------------------------------------------------------


def test_spec_suite_size():
    assert len(spec_benchmark_names()) == 29
    assert len(spec_cpu2006_suite()) == 29


def test_spec_base_and_rate_core_counts():
    assert all(w.active_cores == 1 for w in spec_cpu2006_base_suite())
    assert all(w.active_cores == 4 for w in spec_cpu2006_rate_suite(4))


def test_spec_category_filter():
    fp = spec_cpu2006_suite(category="fp")
    integer = spec_cpu2006_suite(category="int")
    assert len(fp) + len(integer) == 29
    assert all(w.category == "fp" for w in fp)
    assert all(w.category == "int" for w in integer)


def test_spec_compute_bound_benchmarks_highly_scalable():
    # Paper Fig. 7: 416.gamess and 444.namd gain the most.
    assert spec_benchmark("416.gamess").frequency_scalability > 0.9
    assert spec_benchmark("444.namd").frequency_scalability > 0.9


def test_spec_memory_bound_benchmarks_barely_scalable():
    # Paper Fig. 7: 410.bwaves and 433.milc gain almost nothing.
    assert spec_benchmark("410.bwaves").frequency_scalability < 0.15
    assert spec_benchmark("433.milc").frequency_scalability < 0.15
    assert spec_benchmark("429.mcf").frequency_scalability < 0.2


def test_spec_memory_bound_have_high_memory_intensity():
    for name in ("410.bwaves", "433.milc", "462.libquantum"):
        workload = spec_benchmark(name)
        assert workload.memory_intensity > 0.8


def test_spec_unknown_benchmark_raises():
    with pytest.raises(ConfigurationError):
        spec_benchmark("999.unknown")


def test_spec_bad_category_raises():
    with pytest.raises(ConfigurationError):
        spec_cpu2006_suite(category="vector")


def test_spec_average_scalability_in_plausible_range():
    # An average near 0.5-0.65 is what makes ~8% frequency translate into the
    # ~4-5% average SPEC gains of the paper.
    assert 0.45 <= average_scalability() <= 0.70


def test_spec_all_activities_and_intensities_bounded():
    for workload in spec_cpu2006_suite():
        assert 0.0 < workload.activity <= 1.0
        assert 0.0 <= workload.memory_intensity <= 1.0


# -- power virus ---------------------------------------------------------------------------------


def test_power_virus_has_maximum_activity():
    virus = power_virus_workload(4)
    assert virus.activity == 1.0
    assert virus.active_cores == 4


def test_tdp_workload_below_virus():
    assert tdp_sizing_workload().activity < power_virus_workload().activity


def test_power_virus_rejects_bad_core_count():
    with pytest.raises(ConfigurationError):
        power_virus_workload(0)


# -- graphics workloads -----------------------------------------------------------------------------


def test_three_dmark_suite_properties():
    suite = three_dmark_suite()
    assert len(suite) >= 3
    for workload in suite:
        assert workload.graphics_scalability > 0.7
        assert workload.driver_cores == 1
        assert 0.0 < workload.graphics_activity <= 1.0


def test_graphics_workload_fps_scales_with_frequency():
    workload = three_dmark_suite()[0]
    assert workload.relative_fps(1.1e9) > workload.relative_fps(0.8e9)


def test_graphics_workload_validation():
    with pytest.raises(ConfigurationError):
        GraphicsWorkload(name="bad", graphics_activity=2.0)


# -- energy scenarios ---------------------------------------------------------------------------------


def test_rmt_scenario_is_mostly_idle():
    scenario = rmt_scenario()
    idle_fraction = sum(
        p.fraction for p in scenario.phases if p.mode == "package_idle"
    )
    assert idle_fraction > 0.95


def test_energy_star_scenario_uses_standard_weights():
    scenario = energy_star_scenario()
    weights = {p.name: p.fraction for p in scenario.phases}
    assert weights["off"] == pytest.approx(0.25)
    assert weights["sleep"] == pytest.approx(0.35)
    assert weights["long_idle"] == pytest.approx(0.10)
    assert weights["short_idle"] == pytest.approx(0.30)


def test_scenario_fractions_sum_to_one():
    for scenario in (rmt_scenario(), energy_star_scenario()):
        assert sum(p.fraction for p in scenario.phases) == pytest.approx(1.0)


def test_scenario_rejects_bad_fractions():
    with pytest.raises(ConfigurationError):
        EnergyScenario(
            name="broken",
            phases=(
                ResidencyPhase(name="a", fraction=0.5, mode="active"),
                ResidencyPhase(name="b", fraction=0.2, mode="off"),
            ),
            average_power_limit_w=1.0,
        )


def test_residency_phase_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        ResidencyPhase(name="x", fraction=0.5, mode="hibernating")


def test_scenario_phase_names():
    assert "deep_idle" in rmt_scenario().phase_names()


# -- phase traces ----------------------------------------------------------------------------------------


def test_bursty_idle_trace_mostly_idle():
    trace = bursty_idle_trace()
    assert trace.idle_fraction() > 0.9
    assert trace.duration_s == pytest.approx(10.0)


def test_sustained_compute_trace_never_idle():
    trace = sustained_compute_trace(duration_s=10.0)
    assert trace.idle_fraction() == 0.0


def test_phase_trace_requires_phases():
    with pytest.raises(ConfigurationError):
        PhaseTrace(name="empty", phases=())


def test_trace_phase_validation():
    with pytest.raises(ConfigurationError):
        TracePhase(duration_s=0.0, demand=None)
