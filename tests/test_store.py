"""Tests for the persistent run store: canonical hashing, artifacts,
manifests, the store-backed study cache, and the cross-run SQLite index."""

from __future__ import annotations

import json
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.analysis.study import CallableTask, EngineTask, Study, StudyResult
from repro.common.errors import ConfigurationError, StoreError
from repro.core.spec import get_spec
from repro.sim.engine import ENGINE_VERSION, SimulationEngine
from repro.sim.metrics import RESULT_SCHEMA_VERSION, RunResult
from repro.store import (
    RunIndex,
    RunManifest,
    RunStore,
    StoreCache,
    StoreCorruptionWarning,
    canonical_json,
    decode_value,
    digest,
    encode_value,
    resolve_store_root,
    run_id_for_task,
    task_fingerprint,
)
from repro.store.manifest import MANIFEST_SCHEMA_VERSION, utc_timestamp
from repro.workloads.dynamics import build_scenario, scenario_names
from repro.workloads.energy import energy_star_scenario
from repro.workloads.spec import spec_benchmark


def _scenario(**overrides):
    overrides.setdefault("duration_s", 4.0)
    overrides.setdefault("time_step_s", 1.0)
    return build_scenario("sustained", **overrides)


def _task(spec="darkgates", tdp_w=35.0, **overrides):
    return EngineTask(get_spec(spec, tdp_w=tdp_w), _scenario(**overrides))


def _manifest(run_id, **overrides):
    fields = dict(
        run_id=run_id,
        kind="dynamic",
        workload_name="sustained",
        engine_version=ENGINE_VERSION,
        repro_version="test",
        created_at=utc_timestamp(),
    )
    fields.update(overrides)
    return RunManifest(**fields)


# -- canonical hashing ---------------------------------------------------------------------------


def test_canonical_json_known_vector():
    assert canonical_json({"b": 1, "a": [1.5, 2]}) == '{"a":[1.5,2],"b":1}'


def test_canonical_json_normalises_negative_zero():
    assert canonical_json(-0.0) == canonical_json(0.0)


def test_canonical_json_rejects_nan_and_exotic_objects():
    with pytest.raises(ConfigurationError):
        canonical_json(float("nan"))
    with pytest.raises(ConfigurationError):
        canonical_json(object())
    with pytest.raises(ConfigurationError):
        canonical_json({1: "non-string-key"})


def test_digest_is_stable_across_calls():
    task = _task()
    assert digest(task.spec) == digest(get_spec("darkgates", tdp_w=35.0))
    assert run_id_for_task(
        task, seed=7, engine_version="1"
    ) == run_id_for_task(_task(), seed=7, engine_version="1")


def test_run_id_sensitive_to_every_identity_input():
    base = run_id_for_task(_task(), seed=7, engine_version="1")
    assert run_id_for_task(_task(), seed=8, engine_version="1") != base
    assert run_id_for_task(_task(), seed=7, engine_version="2") != base
    assert run_id_for_task(_task(tdp_w=91.0), seed=7, engine_version="1") != base
    assert (
        run_id_for_task(_task(spec="baseline"), seed=7, engine_version="1") != base
    )
    assert (
        run_id_for_task(_task(duration_s=5.0), seed=7, engine_version="1") != base
    )


def test_callable_task_fingerprint_includes_function_and_args():
    task = CallableTask("cell", _scenario_count, (3,))
    print_task = CallableTask("cell", _scenario_total, (3,))
    assert task_fingerprint(task)["fn"].endswith("_scenario_count")
    assert run_id_for_task(task, seed=None, engine_version="1") != run_id_for_task(
        print_task, seed=None, engine_version="1"
    )


def _scenario_count(n):
    return n


def _scenario_total(n):
    return n


# -- result payload schema -----------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload",
    [spec_benchmark("416.gamess"), energy_star_scenario(), _scenario()],
    ids=["cpu", "energy", "dynamic"],
)
def test_result_payloads_round_trip_with_schema_version(workload):
    engine = SimulationEngine(get_spec("darkgates").build())
    result = engine.run(workload)
    payload = result.to_dict()
    assert payload["schema_version"] == RESULT_SCHEMA_VERSION
    assert RunResult.from_dict(payload) == result


def test_newer_schema_version_rejected():
    engine = SimulationEngine(get_spec("darkgates").build())
    payload = engine.run(spec_benchmark("416.gamess")).to_dict()
    payload["schema_version"] = RESULT_SCHEMA_VERSION + 1
    with pytest.raises(ConfigurationError):
        RunResult.from_dict(payload)


def test_encode_decode_round_trips_engine_results():
    engine = SimulationEngine(get_spec("darkgates").build())
    result = engine.run(_scenario())
    payload = encode_value(result)
    assert payload["codec"] == "run_result"
    assert decode_value(json.loads(json.dumps(payload))) == result


def test_encode_rejects_unfaithful_values():
    assert decode_value(encode_value({"plain": [1, 2]})) == {"plain": [1, 2]}
    with pytest.raises(StoreError):
        encode_value((1, 2))  # would come back as a list
    with pytest.raises(StoreError):
        encode_value(object())


# -- the artifact store --------------------------------------------------------------------------


def test_resolve_store_root_precedence(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env"))
    assert resolve_store_root(tmp_path / "explicit") == tmp_path / "explicit"
    assert resolve_store_root() == tmp_path / "env"
    monkeypatch.delenv("REPRO_STORE_DIR")
    assert resolve_store_root().name == ".repro_store"


def test_store_put_load_round_trip(tmp_path):
    store = RunStore(tmp_path)
    task = _task()
    engine = SimulationEngine(task.spec.build())
    result = engine.run(task.workload)
    run_id = run_id_for_task(task, seed=None, engine_version=ENGINE_VERSION)
    store.put(_manifest(run_id, spec_name="darkgates", tdp_w=35.0), result)
    assert run_id in store
    assert store.load_value(run_id) == result
    manifest = store.load_manifest(run_id)
    assert manifest.kind == "dynamic"
    assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
    assert len(store) == 1


def test_manifest_run_id_mismatch_detected(tmp_path):
    store = RunStore(tmp_path)
    store.put(_manifest("a" * 64), {"v": 1})
    bad_dir = store.run_dir("b" * 64)
    bad_dir.mkdir(parents=True)
    for name in ("result.json", "manifest.json"):
        (bad_dir / name).write_text((store.run_dir("a" * 64) / name).read_text())
    with pytest.raises(StoreError, match="claims run_id"):
        store.load_manifest("b" * 64)


def test_corrupted_manifest_skipped_with_warning(tmp_path):
    store = RunStore(tmp_path)
    store.put(_manifest("a" * 64), {"v": 1})
    store.put(_manifest("b" * 64), {"v": 2})
    (store.run_dir("b" * 64) / "manifest.json").write_text('{"run_id": "b')
    with pytest.warns(StoreCorruptionWarning, match="b" * 8):
        manifests = list(store.iter_manifests())
    assert [m.run_id for m in manifests] == ["a" * 64]
    # The index rebuild rides the same path: corrupt runs stay out.
    index = RunIndex(store)
    with pytest.warns(StoreCorruptionWarning):
        assert index.rebuild() == 1
    assert index.count() == 1


def test_manifest_from_dict_rejects_bad_payloads():
    good = _manifest("c" * 64).to_dict()
    with pytest.raises(StoreError, match="missing"):
        RunManifest.from_dict({k: v for k, v in good.items() if k != "kind"})
    with pytest.raises(StoreError, match="unknown"):
        RunManifest.from_dict({**good, "surprise": 1})
    with pytest.raises(StoreError, match="newer"):
        RunManifest.from_dict(
            {**good, "schema_version": MANIFEST_SCHEMA_VERSION + 1}
        )


def _put_run(root, run_id):
    """Module-level so the process pool can pickle it (concurrency test)."""
    RunStore(root).put(_manifest(run_id), {"payload": list(range(2000))})
    return RunStore(root).load_manifest(run_id).run_id


def test_concurrent_writers_of_same_run_id(tmp_path):
    """Two processes racing on one run ID leave a clean, complete run."""
    run_id = "f" * 64
    with ProcessPoolExecutor(max_workers=2) as pool:
        results = list(
            pool.map(_put_run, [str(tmp_path)] * 4, [run_id] * 4)
        )
    assert results == [run_id] * 4
    store = RunStore(tmp_path)
    assert store.load_manifest(run_id).run_id == run_id
    assert store.load_value(run_id) == {"payload": list(range(2000))}
    assert store.run_ids() == [run_id]


def test_gc_dry_run_then_apply(tmp_path):
    store = RunStore(tmp_path)
    store.put(_manifest("a" * 64, engine_version="0"), {"v": 1})
    store.put(_manifest("b" * 64), {"v": 2})
    selected = store.gc(keep_engine_version=ENGINE_VERSION)
    assert [m.run_id for m in selected] == ["a" * 64]
    assert len(store) == 2  # dry run deletes nothing
    store.gc(keep_engine_version=ENGINE_VERSION, apply=True)
    assert store.run_ids() == ["b" * 64]
    store.gc(delete_all=True, apply=True)
    assert len(store) == 0


# -- the store-backed study cache ----------------------------------------------------------------


def _dynamics_study(root, **kwargs):
    kwargs.setdefault("cache", StoreCache(root, seed=7))
    return Study.over_dynamics(
        ("darkgates", "baseline"),
        [_scenario()],
        tdp_levels_w=(35.0,),
        seed=7,
        **kwargs,
    )


def test_warm_sweep_executes_zero_tasks(tmp_path):
    """Acceptance: the second run of a seeded dynamics sweep is pure disk."""
    cold = _dynamics_study(tmp_path)
    first = cold.run()
    assert cold.tasks_executed == 2

    warm = _dynamics_study(tmp_path)
    second = warm.run()
    assert warm.tasks_executed == 0
    assert second.to_json() == first.to_json()


def test_cache_seed_partitions_runs(tmp_path):
    _dynamics_study(tmp_path).run()
    other_seed = _dynamics_study(tmp_path, cache=StoreCache(tmp_path, seed=8))
    other_seed.run()
    assert other_seed.tasks_executed == 2  # different seed, different run IDs


def test_cache_mapping_protocol(tmp_path):
    cache = StoreCache(tmp_path)
    task = _task()
    engine = SimulationEngine(task.spec.build())
    result = engine.run(task.workload)
    assert task not in cache
    cache[task] = result
    assert task in cache
    assert len(cache) == 1 and list(cache) == [task]

    fresh = StoreCache(tmp_path)
    assert fresh[task] == result  # read purely from disk
    del fresh[task]
    assert task not in StoreCache(tmp_path)
    with pytest.raises(KeyError):
        StoreCache(tmp_path)[task]


def test_cache_survives_corrupted_result(tmp_path):
    cache = StoreCache(tmp_path)
    task = _task()
    cache[task] = SimulationEngine(task.spec.build()).run(task.workload)
    run_id = cache.run_id(task)
    (cache.store.run_dir(run_id) / "result.json").write_text("{not json")
    fresh = StoreCache(tmp_path)
    with pytest.warns(UserWarning, match="re-running"):
        assert task not in fresh  # miss, not crash: the study re-runs it


def test_cache_keeps_unencodable_values_in_memory(tmp_path):
    cache = StoreCache(tmp_path)
    task = CallableTask("odd", _scenario_count, (3,))
    with pytest.warns(UserWarning, match="memory only"):
        cache[task] = object()
    assert cache.unpersisted == 1
    assert task in cache
    assert len(RunStore(tmp_path)) == 0


def test_store_cache_refuses_to_pickle(tmp_path):
    with pytest.raises(ConfigurationError, match="driving process"):
        pickle.dumps(StoreCache(tmp_path))


def test_store_cache_with_process_executor(tmp_path):
    """The cache stays on the main side; only tasks cross the pool."""
    study = _dynamics_study(tmp_path, executor="process", max_workers=2)
    study.run()
    assert study.tasks_executed == 2
    warm = _dynamics_study(tmp_path, executor="process", max_workers=2)
    warm.run()
    assert warm.tasks_executed == 0


def test_from_store_serves_completed_sweeps_and_rejects_cold(tmp_path):
    scenario = _scenario()
    _dynamics_study(tmp_path).run()
    specs = tuple(
        get_spec(name, tdp_w=35.0) for name in ("darkgates", "baseline")
    )
    served = StudyResult.from_store(
        StoreCache(tmp_path, seed=7), specs, [scenario], seed=7
    )
    assert served.get(specs[0], "sustained").primary_metric > 0.0
    with pytest.raises(ConfigurationError, match="missing from the run store"):
        StudyResult.from_store(
            StoreCache(tmp_path, seed=99), specs, [scenario], seed=99
        )


# -- the SQLite index ----------------------------------------------------------------------------


@pytest.fixture()
def populated_store(tmp_path):
    _dynamics_study(tmp_path).run()
    return RunStore(tmp_path)


def test_index_rebuild_and_query(populated_store):
    index = RunIndex(populated_store)
    assert index.rebuild() == 2
    assert index.exists() and index.count() == 2
    rows = index.query(spec="darkgates", kind="dynamic", tdp_w=35.0)
    assert len(rows) == 1
    assert rows[0].workload_name == "sustained"
    assert rows[0].primary_metric is not None
    assert index.query(spec="darkgates@35W") == rows  # label matches too
    assert index.query(kind="transient") == []


def test_index_rebuild_from_artifacts_alone(populated_store):
    index = RunIndex(populated_store)
    index.rebuild()
    index.path.unlink()  # lose the database entirely
    fresh = RunIndex(populated_store)
    assert not fresh.exists()
    assert fresh.rebuild() == 2  # recovered purely from manifests


def test_index_compare_joins_on_shared_cells(populated_store):
    index = RunIndex(populated_store)
    index.rebuild()
    entries = index.compare("darkgates", "baseline", kind="dynamic")
    assert len(entries) == 1
    entry = entries[0]
    assert entry["workload_name"] == "sustained"
    assert entry["ratio"] == pytest.approx(entry["metric_a"] / entry["metric_b"])
    with pytest.raises(StoreError, match="no stored cells"):
        index.compare("darkgates", "darkgates+c7")


def test_index_prune(populated_store):
    index = RunIndex(populated_store)
    index.rebuild()
    victim = index.query(spec="darkgates")[0].run_id
    index.prune([victim])
    assert index.count() == 1
    assert index.query(spec="darkgates") == []


# -- scenario registry ---------------------------------------------------------------------------


def test_scenario_registry():
    # Importing repro.fleet (pulled in by the repro facade) registers the
    # fleet-* builders next to the three hand-built timelines.
    assert scenario_names() == [
        "burst",
        "fleet-consumer",
        "fleet-datacenter",
        "fleet-graphics",
        "sprint_and_rest",
        "sustained",
    ]
    scenario = build_scenario("burst", burst_s=5.0, time_step_s=0.5)
    assert scenario.time_step_s == 0.5
    with pytest.raises(ConfigurationError, match="known scenarios"):
        build_scenario("nope")
    with pytest.raises(ConfigurationError, match="bad options"):
        build_scenario("sustained", no_such_knob=1)
