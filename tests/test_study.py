"""Tests for the Study sweep runner: grids, executors, caching, and
StudyResult serialisation."""

from __future__ import annotations

import json

import pytest

from repro.analysis.study import (
    CallableTask,
    ProcessExecutor,
    SerialExecutor,
    Study,
    StudyResult,
    resolve_executor,
)
from repro.common.errors import ConfigurationError
from repro.core.darkgates import SystemComparison
from repro.core.spec import get_spec
from repro.sim.metrics import CpuRunResult, EnergyRunResult
from repro.workloads.energy import energy_star_scenario, rmt_scenario
from repro.workloads.spec import spec_benchmark


def _small_suite():
    return [spec_benchmark(name) for name in ("416.gamess", "410.bwaves", "470.lbm")]


# -- grid construction ---------------------------------------------------------------------------


def test_grid_size_specs_times_workloads():
    study = Study(("darkgates", "baseline"), _small_suite())
    assert len(study) == 6
    assert [spec.name for spec in study.specs] == ["darkgates", "baseline"]


def test_over_tdp_levels_expands_variants():
    study = Study.over_tdp_levels(
        ("darkgates", "baseline"), (35.0, 91.0), _small_suite()
    )
    assert len(study.specs) == 4
    assert sorted({spec.tdp_w for spec in study.specs}) == [35.0, 91.0]


def test_suite_mapping_keys_cells():
    suites = {
        "base": _small_suite(),
        "rate": [w.with_active_cores(4) for w in _small_suite()],
    }
    study = Study(("darkgates",), suites)
    assert len(study) == 6
    result = study.run()
    base = result.get("darkgates", "416.gamess", suite="base")
    rate = result.get("darkgates", "416.gamess", suite="rate")
    assert base != rate  # 1-core and 4-core runs differ


def test_duplicate_workload_names_rejected():
    workload = spec_benchmark("416.gamess")
    with pytest.raises(ConfigurationError):
        Study(("darkgates",), [workload, workload])


def test_reserved_suite_name_rejected():
    with pytest.raises(ConfigurationError):
        Study(("darkgates",), {"tasks": _small_suite()})


# -- execution and parity ------------------------------------------------------------------------


def test_study_matches_system_comparison(comparison_91w):
    suite = _small_suite()
    result = Study(("darkgates", "baseline"), suite).run()
    for workload in suite:
        expected = comparison_91w.compare_cpu(workload)
        after = result.get("darkgates", workload)
        before = result.get("baseline", workload)
        assert after.improvement_over(before) == pytest.approx(
            expected.performance_improvement
        )


def test_study_runs_energy_scenarios():
    result = Study(("darkgates",), [energy_star_scenario(), rmt_scenario()]).run()
    run = result.get("darkgates", "RMT")
    assert isinstance(run, EnergyRunResult)
    assert run.average_power_w > 0.0


def test_missing_cell_raises():
    result = Study(("darkgates",), _small_suite()).run()
    with pytest.raises(ConfigurationError):
        result.get("baseline", "416.gamess")
    with pytest.raises(ConfigurationError):
        result.task("no-such-task")


# -- caching -------------------------------------------------------------------------------------


def test_repeat_run_executes_nothing():
    study = Study(("darkgates",), _small_suite())
    first = study.run()
    executed = study.tasks_executed
    assert executed == 3
    second = study.run()
    assert study.tasks_executed == executed
    assert first == second


def test_shared_cache_across_studies():
    cache = {}
    Study(("darkgates",), _small_suite(), cache=cache).run()
    overlapping = Study(("darkgates", "baseline"), _small_suite(), cache=cache)
    overlapping.run()
    # Only the baseline cells were new.
    assert overlapping.tasks_executed == 3


def test_same_workload_in_two_suites_runs_once():
    suite = _small_suite()
    study = Study(("darkgates",), {"a": suite, "b": suite})
    study.run()
    assert study.tasks_executed == 3  # not 6: identical (spec, workload) pairs


# -- executors -----------------------------------------------------------------------------------


def test_resolve_executor():
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    assert isinstance(resolve_executor("process"), ProcessExecutor)
    executor = SerialExecutor()
    assert resolve_executor(executor) is executor
    with pytest.raises(ConfigurationError):
        resolve_executor("threads")
    with pytest.raises(ConfigurationError):
        resolve_executor(object())
    with pytest.raises(ConfigurationError):
        ProcessExecutor(max_workers=0)


def test_resolve_executor_validates_max_workers():
    for name in ("serial", "batched", "process"):
        with pytest.raises(ConfigurationError, match="max_workers must be >= 1"):
            resolve_executor(name, max_workers=0)
        with pytest.raises(ConfigurationError, match="max_workers must be >= 1"):
            resolve_executor(name, max_workers=-2)
    assert isinstance(resolve_executor("serial", max_workers=2), SerialExecutor)


def test_process_pool_four_tdp_sweep_with_caching():
    """Acceptance: a 4-TDP SPEC sweep through the process pool, cached."""
    suite = _small_suite()
    study = Study.over_tdp_levels(
        ("darkgates", "baseline"),
        (35.0, 45.0, 65.0, 91.0),
        suite,
        executor="process",
        max_workers=2,
    )
    result = study.run()
    assert study.tasks_executed == 8 * len(suite)
    # Repeat invocation does zero engine re-runs.
    again = study.run()
    assert study.tasks_executed == 8 * len(suite)
    assert again == result
    # Parity with the serial executor.
    serial = Study.over_tdp_levels(
        ("darkgates", "baseline"), (35.0, 45.0, 65.0, 91.0), suite
    ).run()
    assert serial == result
    # Every cell is a fully-typed result.
    for tdp in (35.0, 45.0, 65.0, 91.0):
        after = result.get(get_spec("darkgates", tdp_w=tdp), suite[0])
        before = result.get(get_spec("baseline", tdp_w=tdp), suite[0])
        assert isinstance(after, CpuRunResult)
        assert after.improvement_over(before) > 0.0


# -- callable tasks ------------------------------------------------------------------------------


def test_callable_tasks_run_alongside_grid():
    study = Study(
        ("darkgates",),
        _small_suite()[:1],
        tasks=(CallableTask(key="constant", fn=int, args=("42",)),),
    )
    result = study.run()
    assert result.task("constant") == 42
    assert len(result.cells) == 2


def test_non_callable_task_rejected():
    with pytest.raises(ConfigurationError):
        Study(tasks=("not-a-task",))


# -- StudyResult reporting and serialisation -----------------------------------------------------


def test_as_table_lists_every_cell():
    result = Study(("darkgates",), _small_suite(), name="smoke").run()
    table = result.as_table()
    assert "smoke" in table
    for workload in _small_suite():
        assert workload.name in table
    assert "darkgates@91W" in table


def test_study_result_json_round_trip():
    study = Study(
        ("darkgates", "baseline"),
        [spec_benchmark("416.gamess"), energy_star_scenario()],
        tasks=(CallableTask(key="meta", fn=str, args=(7,)),),
        name="roundtrip",
    )
    result = study.run()
    restored = StudyResult.from_json(result.to_json(indent=2))
    assert restored == result
    assert restored.get("darkgates", "416.gamess") == result.get(
        "darkgates", "416.gamess"
    )
    assert restored.task("meta") == "7"


def test_study_result_json_is_valid_json():
    result = Study(("darkgates",), _small_suite()[:1]).run()
    payload = json.loads(result.to_json())
    assert payload["cells"][0]["spec"]["name"] == "darkgates"
    assert payload["cells"][0]["value_kind"] == "run_result"


# -- transient sweeps ----------------------------------------------------------------------------


def test_over_transients_builds_the_grid():
    from repro.pdn.transients import core_wake_trace, step_trace

    traces = [core_wake_trace(duration_s=1e-6), step_trace("step25", 25.0, duration_s=1e-6)]
    study = Study.over_transients(
        ("darkgates", "baseline"), traces, time_steps_s=(0.5e-9, 1e-9)
    )
    # 2 specs x 2 traces x 2 time steps.
    assert len(study) == 8
    assert set(study.suites) == {"transients"}


def test_over_transients_runs_and_reads_back():
    from repro.pdn.transients import core_wake_trace
    from repro.sim.metrics import TransientRunResult

    trace = core_wake_trace(duration_s=1e-6)
    study = Study.over_transients(
        ("darkgates", "baseline"), [trace], name="fig6"
    )
    result = study.run()
    gated = result.get("baseline", "core_wake", suite="transients")
    bypassed = result.get("darkgates", "core_wake", suite="transients")
    assert isinstance(gated, TransientRunResult)
    assert gated.worst_droop_v > bypassed.worst_droop_v
    # Cached: a re-run executes nothing new.
    executed = study.tasks_executed
    study.run()
    assert study.tasks_executed == executed


def test_transient_study_result_json_round_trip():
    from repro.pdn.transients import core_wake_trace

    study = Study.over_transients(("darkgates",), [core_wake_trace(duration_s=1e-6)])
    result = study.run()
    restored = StudyResult.from_json(result.to_json())
    assert restored.cells == result.cells


def test_paper_transient_scenarios_run_through_study():
    from repro.pdn.transients import paper_transient_scenarios

    scenarios = paper_transient_scenarios(duration_s=1e-6)
    study = Study(
        ("darkgates", "baseline"), {"transients": list(scenarios)}, name="droops"
    )
    result = study.run()
    for scenario in scenarios:
        gated = result.get("baseline", scenario.name, suite="transients")
        bypassed = result.get("darkgates", scenario.name, suite="transients")
        assert gated.worst_droop_v > 0
        assert bypassed.worst_droop_v > 0
