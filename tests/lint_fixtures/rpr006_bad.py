"""Bad fixture: internal import of a deprecated factory shim.

Expected findings: 1 (the test configures ``deprecated-factories =
["darkgates_system"]`` and this file is not on the allowlist).
"""

from repro.core.darkgates import darkgates_system


def build():
    return darkgates_system()
