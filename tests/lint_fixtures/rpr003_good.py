"""Good fixture: canonical dumps, plus **kwargs the analyzer must skip."""

import json


def encode(payload, **overrides):
    canonical = json.dumps(payload, sort_keys=True, allow_nan=False)
    forwarded = json.dumps(payload, **overrides)
    return canonical, forwarded


def write(payload, stream):
    json.dump(payload, stream, sort_keys=True, allow_nan=False)
