"""Bad fixture: fingerprinted frozen dataclasses with uncanonical fields.

The test configures ``fingerprint-roots = ["FixtureSpec"]``; FixtureChild
is reachable through the ``child`` annotation.  Expected findings: 3
(non-str mapping key, set-typed field, mutable default_factory).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass(frozen=True)
class FixtureChild:
    weights: Dict[int, float]
    flags: Set[str]


@dataclass(frozen=True)
class FixtureSpec:
    name: str
    child: FixtureChild
    history: List[str] = field(default_factory=list)
