"""Good fixture: the three accepted to_dict shapes.

A literal ``schema_version`` key, an ``asdict`` payload whose dataclass
carries a ``schema_version`` field, and an abstract hook that only raises
NotImplementedError.
"""

from dataclasses import asdict, dataclass

SCHEMA_VERSION = 3


class FixtureResult:
    def __init__(self, value: float) -> None:
        self.value = value

    def to_dict(self):
        return {"schema_version": SCHEMA_VERSION, "value": self.value}


@dataclass(frozen=True)
class FieldManifest:
    schema_version: int = 1
    value: float = 0.0

    def to_dict(self):
        return asdict(self)


class AbstractResult:
    def to_dict(self):
        raise NotImplementedError
