"""Suppression-hygiene violations: each comment here earns an RPR000.

Expected findings: 3 (missing rationale, unknown rule code, unused
suppression).
"""


def fallback(mapping, key):
    # repro-lint: disable=RPR005
    value = mapping.get(key)
    # repro-lint: disable=RPR999 -- no such rule code exists
    # repro-lint: disable=RPR003 -- nothing on this line triggers RPR003
    return value
