"""Good fixture: canonicalizable fields, and out-of-scope dataclasses.

``ScratchState`` has uncanonical annotations but is neither frozen nor
reachable from a fingerprint root, so RPR004 must stay silent on it.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple


@dataclass(frozen=True)
class FixtureChild:
    weights: Dict[str, float]
    flags: Tuple[str, ...]


@dataclass(frozen=True)
class FixtureSpec:
    name: str
    child: FixtureChild
    history: Tuple[str, ...] = ()


@dataclass
class ScratchState:
    seen: Optional[Set[int]] = None
