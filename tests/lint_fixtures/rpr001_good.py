"""Good fixture: every random draw flows from an explicit, recorded seed."""

from numpy.random import SeedSequence, default_rng


def draw(seed: int):
    rng = default_rng(seed)
    keyword = default_rng(seed=seed)
    sequence = SeedSequence(entropy=seed)
    explicit = SeedSequence(seed)
    return rng, keyword, sequence, explicit
