"""Good fixture: systems are built through the spec registry."""

from repro.core.spec import get_spec


def build():
    return get_spec("darkgates").build()
