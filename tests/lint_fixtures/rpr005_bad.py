"""Bad fixture: builtin raises in library code.

Expected findings: 3 (KeyError, ValueError, bare RuntimeError).
"""


def pick(mapping, key):
    if key not in mapping:
        raise KeyError(key)
    if not mapping:
        raise ValueError("empty mapping")
    raise RuntimeError
