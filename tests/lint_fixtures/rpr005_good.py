"""Good fixture: ReproError-derived raises; NotImplementedError is allowed."""

from repro.common.errors import ConfigurationError


def pick(mapping, key):
    if key not in mapping:
        raise ConfigurationError(f"unknown key {key!r}")
    return mapping[key]


def abstract_hook():
    raise NotImplementedError("subclasses choose the policy")
