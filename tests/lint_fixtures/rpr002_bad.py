"""Bad fixture: wall-clock reads, OS entropy, and id() feeding hashes.

Expected findings: 5 (time.time, datetime.now, os.urandom, id() inside
hash(), id() inside hashlib.sha256()).
"""

import hashlib
import os
import time
from datetime import datetime


def stamp(payload: bytes):
    started = time.time()
    now = datetime.now()
    noise = os.urandom(8)
    token = hash(id(payload))
    digest = hashlib.sha256(str(id(payload)).encode()).hexdigest()
    return started, now, noise, token, digest
