"""Bad fixture: a persisted result payload without a schema version.

Expected findings: 1 (FixtureResult.to_dict never emits schema_version).
"""


class FixtureResult:
    def __init__(self, value: float) -> None:
        self.value = value

    def to_dict(self):
        return {"value": self.value}
