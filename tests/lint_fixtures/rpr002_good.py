"""Good fixture: timestamps arrive as inputs; hashes see only values."""

import hashlib


def stamp(started_s: float, payload: bytes):
    token = hash((payload, started_s))
    digest = hashlib.sha256(payload).hexdigest()
    return token, digest
