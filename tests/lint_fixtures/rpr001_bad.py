"""Bad fixture: every seed-discipline violation RPR001 catches.

Expected findings: 5 (stdlib random import, global numpy seed, global
numpy draw, unseeded default_rng, unseeded SeedSequence).
"""

import random

import numpy as np
from numpy.random import SeedSequence, default_rng


def draw():
    np.random.seed(1234)
    values = np.random.normal(size=4)
    rng = default_rng()
    sequence = SeedSequence()
    return random.choice(["a", "b"]), values, rng, sequence
