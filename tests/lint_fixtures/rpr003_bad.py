"""Bad fixture: JSON writes that will not serialize canonically.

Expected findings: 3 (dumps missing both kwargs, dumps missing
allow_nan=False, dump missing sort_keys=True).
"""

import json


def encode(payload):
    loose = json.dumps(payload)
    half = json.dumps(payload, sort_keys=True)
    return loose, half


def write(payload, stream):
    json.dump(payload, stream, allow_nan=False)
