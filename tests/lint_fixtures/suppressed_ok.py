"""A violation silenced by a well-formed, consumed suppression."""


def fallback(mapping, key):
    if key not in mapping:
        raise KeyError(key)  # repro-lint: disable=RPR005 -- fixture proves a consumed suppression is silent
    return mapping[key]
