"""Unit tests for the load-line model, virus levels, and the guardband model."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ConstraintViolation
from repro.pdn.guardband import GuardbandModel, OffsetGuardbandModel
from repro.pdn.loadline import (
    LoadLine,
    PowerVirusLevel,
    VirusLevelTable,
    default_virus_table,
)


# -- load-line -------------------------------------------------------------------------------


def test_loadline_basic_relationship():
    loadline = LoadLine(resistance_ohm=2e-3)
    assert loadline.load_voltage(1.2, 50.0) == pytest.approx(1.1)


def test_loadline_setpoint_inversion():
    loadline = LoadLine(resistance_ohm=1.8e-3)
    setpoint = loadline.setpoint_for_load_voltage(1.0, 40.0)
    assert loadline.load_voltage(setpoint, 40.0) == pytest.approx(1.0)


def test_loadline_ir_guardband_scales_with_current():
    loadline = LoadLine(resistance_ohm=2e-3)
    assert loadline.ir_guardband_v(100.0) == pytest.approx(0.2)
    assert loadline.ir_guardband_v(50.0) == pytest.approx(0.1)


def test_loadline_excess_voltage_for_light_load():
    loadline = LoadLine(resistance_ohm=2e-3)
    # Guardbanded for 100 A but only drawing 20 A: 160 mV of excess voltage.
    assert loadline.excess_voltage_v(100.0, 20.0) == pytest.approx(0.16)


def test_loadline_excess_voltage_rejects_over_virus_current():
    loadline = LoadLine(resistance_ohm=2e-3)
    with pytest.raises(ConstraintViolation):
        loadline.excess_voltage_v(50.0, 60.0)


def test_loadline_vmin_violation_detected():
    loadline = LoadLine(resistance_ohm=2e-3, vmin_v=0.6, vmax_v=1.5)
    with pytest.raises(ConstraintViolation):
        loadline.check_operating_point(vr_setpoint_v=0.7, virus_current_a=100.0)


def test_loadline_vmax_violation_detected():
    loadline = LoadLine(resistance_ohm=2e-3, vmin_v=0.6, vmax_v=1.2)
    with pytest.raises(ConstraintViolation):
        loadline.check_operating_point(vr_setpoint_v=1.3, virus_current_a=10.0)


def test_loadline_valid_operating_point_passes():
    loadline = LoadLine(resistance_ohm=2e-3, vmin_v=0.6, vmax_v=1.5)
    loadline.check_operating_point(vr_setpoint_v=1.1, virus_current_a=100.0)


def test_loadline_guardband_step_between_levels():
    loadline = LoadLine(resistance_ohm=2e-3)
    level1 = PowerVirusLevel("VirusLevel1", 1, 30.0)
    level2 = PowerVirusLevel("VirusLevel2", 2, 60.0)
    assert loadline.guardband_step_v(level1, level2) == pytest.approx(0.06)


def test_loadline_rejects_inverted_limits():
    with pytest.raises(ConfigurationError):
        LoadLine(resistance_ohm=2e-3, vmin_v=1.5, vmax_v=1.0)


# -- virus levels ---------------------------------------------------------------------------


def test_default_virus_table_has_one_level_per_core():
    table = default_virus_table(4)
    assert len(table.levels) == 4
    assert table.names() == ["VirusLevel1", "VirusLevel2", "VirusLevel3", "VirusLevel4"]


def test_virus_levels_are_increasing_in_current():
    table = default_virus_table(4)
    currents = [level.virus_current_a for level in table.levels]
    assert currents == sorted(currents)
    assert currents[0] < currents[-1]


def test_virus_level_selection_by_active_cores():
    table = default_virus_table(4)
    assert table.level_for_active_cores(1).name == "VirusLevel1"
    assert table.level_for_active_cores(3).name == "VirusLevel3"
    # Zero active cores still needs the level-1 guardband (wake-up is imminent).
    assert table.level_for_active_cores(0).name == "VirusLevel1"


def test_virus_level_selection_beyond_table_raises():
    table = default_virus_table(2)
    with pytest.raises(ConstraintViolation):
        table.level_for_active_cores(3)


def test_virus_table_highest():
    table = default_virus_table(4)
    assert table.highest().max_active_cores == 4


def test_virus_table_rejects_disordered_levels():
    with pytest.raises(ConfigurationError):
        VirusLevelTable(
            levels=[
                PowerVirusLevel("a", 2, 50.0),
                PowerVirusLevel("b", 1, 80.0),
            ]
        )


def test_virus_table_four_core_level_within_edc():
    # The 4-core virus level must stay within a client-class EDC limit.
    table = default_virus_table(4)
    assert table.highest().virus_current_a <= 140.0


# -- guardband model -------------------------------------------------------------------------


def test_guardband_total_is_sum_of_components(gated_pdn):
    model = GuardbandModel(gated_pdn)
    level = default_virus_table(4).level_for_active_cores(1)
    breakdown = model.breakdown(level)
    assert breakdown.total_v == pytest.approx(
        breakdown.ir_drop_v
        + breakdown.transient_droop_v
        + breakdown.reliability_v
        + breakdown.fixed_margin_v
    )


def test_guardband_grows_with_virus_level(gated_pdn):
    model = GuardbandModel(gated_pdn)
    table = default_virus_table(4)
    guardbands = [model.total_guardband_v(level) for level in table.levels]
    assert guardbands == sorted(guardbands)
    assert guardbands[-1] > guardbands[0]


def test_guardband_bypassed_is_smaller(gated_pdn, bypassed_pdn):
    table = default_virus_table(4)
    gated_model = GuardbandModel(gated_pdn)
    bypassed_model = GuardbandModel(bypassed_pdn)
    for level in table.levels:
        assert bypassed_model.total_guardband_v(level) < gated_model.total_guardband_v(level)


def test_guardband_pdn_dependent_part_roughly_halves(gated_pdn, bypassed_pdn):
    # Observation 2 of the paper: ~2x guardband with power-gates.
    level = default_virus_table(4).level_for_active_cores(1)
    gated = GuardbandModel(gated_pdn).breakdown(level)
    bypassed = GuardbandModel(bypassed_pdn).breakdown(level)
    gated_pdn_part = gated.ir_drop_v + gated.transient_droop_v
    bypassed_pdn_part = bypassed.ir_drop_v + bypassed.transient_droop_v
    assert 1.4 <= gated_pdn_part / bypassed_pdn_part <= 3.0


def test_guardband_absolute_magnitude_is_plausible(gated_pdn):
    # Client-class guardbands are tens to a couple hundred millivolts.
    model = GuardbandModel(gated_pdn)
    table = default_virus_table(4)
    for level in table.levels:
        total = model.total_guardband_v(level)
        assert 0.02 <= total <= 0.40


def test_guardband_reliability_margin_adds_linearly(gated_pdn):
    level = default_virus_table(4).level_for_active_cores(2)
    base = GuardbandModel(gated_pdn)
    with_margin = base.with_reliability_margin(0.015)
    assert with_margin.total_guardband_v(level) == pytest.approx(
        base.total_guardband_v(level) + 0.015
    )
    assert with_margin.reliability_margin_v == pytest.approx(0.015)


def test_guardband_breakdown_scaled_keeps_fixed_parts(gated_pdn):
    level = default_virus_table(4).level_for_active_cores(1)
    breakdown = GuardbandModel(gated_pdn, reliability_margin_v=0.005).breakdown(level)
    scaled = breakdown.scaled(0.5)
    assert scaled.ir_drop_v == pytest.approx(breakdown.ir_drop_v * 0.5)
    assert scaled.reliability_v == pytest.approx(breakdown.reliability_v)
    assert scaled.fixed_margin_v == pytest.approx(breakdown.fixed_margin_v)


def test_guardband_impedance_profile_is_cached(gated_pdn):
    model = GuardbandModel(gated_pdn)
    assert model.impedance_profile() is model.impedance_profile()


# -- offset guardband (Fig. 3 manipulation) -------------------------------------------------------


def test_offset_guardband_reduces_total(gated_pdn):
    level = default_virus_table(4).level_for_active_cores(1)
    inner = GuardbandModel(gated_pdn)
    reduced = OffsetGuardbandModel(inner, offset_v=-0.1)
    assert reduced.total_guardband_v(level) == pytest.approx(
        max(0.0, inner.total_guardband_v(level) - 0.1)
    )


def test_offset_guardband_never_goes_negative(gated_pdn):
    level = default_virus_table(4).level_for_active_cores(1)
    reduced = OffsetGuardbandModel(GuardbandModel(gated_pdn), offset_v=-10.0)
    assert reduced.total_guardband_v(level) == 0.0
    assert reduced.breakdown(level).ir_drop_v >= 0.0


def test_offset_guardband_exposes_inner_properties(gated_pdn):
    inner = GuardbandModel(gated_pdn)
    wrapped = OffsetGuardbandModel(inner, offset_v=-0.05)
    assert wrapped.inner is inner
    assert wrapped.configuration is gated_pdn
    assert wrapped.offset_v == pytest.approx(-0.05)
    assert wrapped.impedance_profile() is inner.impedance_profile()


# -- simulated transient-droop derivation --------------------------------------------------------


def test_guardband_simulated_droop_model():
    from repro.pdn.ladder import PdnConfiguration

    level = PowerVirusLevel(name="VL1", max_active_cores=1, virus_current_a=30.0)
    impedance = GuardbandModel(PdnConfiguration())
    simulated = GuardbandModel(PdnConfiguration(), droop_model="simulated")
    assert impedance.droop_model == "impedance"
    assert simulated.droop_model == "simulated"
    droop = simulated.transient_droop_v(level)
    assert droop > 0.0
    # The simulated overshoot excludes the DC part the IR term already
    # covers, so it sits below the conservative target-impedance bound.
    assert droop < impedance.transient_droop_v(level)
    # The underlying waveform is exposed for inspection.
    waveform = simulated.simulated_droop_result(level)
    assert waveform.transient_overshoot_v == pytest.approx(droop)


def test_guardband_simulated_droop_ordering_matches_fig6():
    from repro.pdn.ladder import PdnConfiguration

    level = PowerVirusLevel(name="VL4", max_active_cores=4, virus_current_a=100.0)
    gated = GuardbandModel(PdnConfiguration(), droop_model="simulated")
    bypassed = GuardbandModel(
        PdnConfiguration().with_bypass(), droop_model="simulated"
    )
    assert gated.transient_droop_v(level) > bypassed.transient_droop_v(level)


def test_guardband_rejects_unknown_droop_model():
    from repro.pdn.ladder import PdnConfiguration

    with pytest.raises(ConfigurationError):
        GuardbandModel(PdnConfiguration(), droop_model="spice")


def test_with_reliability_margin_preserves_droop_model():
    from repro.pdn.ladder import PdnConfiguration

    model = GuardbandModel(PdnConfiguration(), droop_model="simulated")
    derived = model.with_reliability_margin(0.005)
    assert derived.droop_model == "simulated"
    assert derived.reliability_margin_v == pytest.approx(0.005)
