"""Golden-file regression tests for every ``run_fig*``/``run_table*`` experiment.

Each experiment's structured result is serialised to a canonical JSON
document and compared **byte-for-byte** against the snapshot under
``tests/golden/``.  Any change to the physics, the firmware models, or the
sweep plumbing that moves a reported number shows up as a diff here instead
of silently shifting the reproduction.

Regenerating the snapshots (after an *intentional* model change)::

    PYTHONPATH=src python -m pytest tests/test_golden_experiments.py --update-golden

then review the diff of ``tests/golden/`` like any other code change.
Generation is deterministic: the serialiser sorts keys, floats are written
with ``repr`` precision, and the experiments themselves contain no
randomness, so regeneration on an unchanged tree is a no-op.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict

import pytest

from repro.analysis import experiments

GOLDEN_DIR = Path(__file__).parent / "golden"


# -- per-experiment serialisers --------------------------------------------------------


def _fig3() -> Dict[str, Any]:
    result = experiments.run_fig3_guardband_motivation()
    return {
        "tdp_levels_w": list(result.tdp_levels_w),
        "improvements": result.improvements,
    }


def _fig4() -> Dict[str, Any]:
    result = experiments.run_fig4_impedance_profiles()
    def profile(p):
        return {
            "label": p.label,
            "points": [
                [point.frequency_hz, point.impedance_ohm.real, point.impedance_ohm.imag]
                for point in p.points
            ],
        }
    return {
        "gated": profile(result.gated),
        "bypassed": profile(result.bypassed),
        "mean_impedance_ratio": result.mean_impedance_ratio,
        "peak_impedance_ratio": result.peak_impedance_ratio,
    }


def _fig7() -> Dict[str, Any]:
    result = experiments.run_fig7_spec_per_benchmark()
    return {
        "tdp_w": result.tdp_w,
        "per_benchmark_improvement": result.per_benchmark_improvement,
        "scalability_by_benchmark": result.scalability_by_benchmark,
    }


def _fig8() -> Dict[str, Any]:
    result = experiments.run_fig8_spec_tdp_sweep()
    return {
        "tdp_levels_w": list(result.tdp_levels_w),
        "base_improvements": result.base_improvements,
        "rate_improvements": result.rate_improvements,
    }


def _fig9() -> Dict[str, Any]:
    result = experiments.run_fig9_graphics_degradation()
    return {
        "tdp_levels_w": list(result.tdp_levels_w),
        "average_degradation": result.average_degradation,
    }


def _fig10() -> Dict[str, Any]:
    result = experiments.run_fig10_energy_efficiency()
    return {
        "reductions": {name: list(pair) for name, pair in result.reductions.items()},
        "limit_compliance": {
            # bool() strips the numpy bools the power comparison produces.
            name: [bool(flag) for flag in flags]
            for name, flags in result.limit_compliance.items()
        },
        "reference_power_w": result.reference_power_w,
    }


def _table1() -> Dict[str, Any]:
    return {"rows": [list(row) for row in experiments.run_table1_package_cstates()]}


def _table2() -> Dict[str, Any]:
    desktop, mobile = experiments.run_table2_system_parameters()
    def sku(description):
        payload = asdict(description)
        return {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in payload.items()
        }
    return {"desktop": sku(desktop), "mobile": sku(mobile)}


def _sec42() -> Dict[str, Any]:
    result = experiments.run_sec42_reliability_guardband()
    return {
        "high_tdp_guardband_v": result.high_tdp_guardband_v,
        "low_tdp_guardband_v": result.low_tdp_guardband_v,
    }


EXPERIMENTS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "fig3_guardband_motivation": _fig3,
    "fig4_impedance_profiles": _fig4,
    "fig7_spec_per_benchmark": _fig7,
    "fig8_spec_tdp_sweep": _fig8,
    "fig9_graphics_degradation": _fig9,
    "fig10_energy_efficiency": _fig10,
    "table1_package_cstates": _table1,
    "table2_system_parameters": _table2,
    "sec42_reliability_guardband": _sec42,
}


def _render(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# -- the tests -------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_matches_golden_snapshot(name, request):
    golden_path = GOLDEN_DIR / f"{name}.json"
    rendered = _render(EXPERIMENTS[name]())
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(rendered)
        return
    assert golden_path.exists(), (
        f"missing golden snapshot {golden_path.name}; regenerate with "
        "pytest tests/test_golden_experiments.py --update-golden"
    )
    assert rendered == golden_path.read_text(), (
        f"{name} drifted from its golden snapshot; if the change is "
        "intentional, regenerate with --update-golden and review the diff"
    )


def test_golden_generation_is_deterministic():
    """Two back-to-back runs of one experiment serialise identically."""
    name = "fig7_spec_per_benchmark"
    assert _render(EXPERIMENTS[name]()) == _render(EXPERIMENTS[name]())


def test_golden_directory_has_no_orphan_snapshots():
    """Every snapshot on disk corresponds to a registered experiment."""
    snapshots = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert snapshots <= set(EXPERIMENTS)
