"""Shared fixtures.

The guardband model runs an AC sweep of the PDN the first time it is asked
for a guardband, so system-level objects are cached at session scope to keep
the suite fast.  Test modules that need a spec/processor/Pcode/V-F curve
should use the factory fixtures here instead of constructing their own —
the factories memoise per configuration, so identical systems are built
exactly once per session no matter how many tests touch them.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.core.darkgates import SystemComparison
from repro.core.spec import get_spec
from repro.pdn.guardband import GuardbandModel
from repro.pdn.ladder import PdnConfiguration
from repro.pdn.loadline import default_virus_table
from repro.pmu.dvfs import DvfsPolicy
from repro.pmu.fuses import FuseSet
from repro.pmu.pcode import Pcode
from repro.pmu.vf_curve import VfCurve
from repro.soc.skus import skylake_h_mobile, skylake_s_desktop


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Regenerate the golden experiment snapshots under tests/golden/ "
            "instead of comparing against them."
        ),
    )


@pytest.fixture(scope="session")
def gated_pdn() -> PdnConfiguration:
    """The default (power-gates enabled) PDN configuration."""
    return PdnConfiguration()


@pytest.fixture(scope="session")
def bypassed_pdn(gated_pdn: PdnConfiguration) -> PdnConfiguration:
    """The bypassed (DarkGates) PDN configuration."""
    return gated_pdn.with_bypass()


@pytest.fixture(scope="session")
def comparison_91w() -> SystemComparison:
    """DarkGates-versus-baseline comparison at 91 W."""
    return SystemComparison(tdp_w=91.0)


@pytest.fixture(scope="session")
def comparison_35w() -> SystemComparison:
    """DarkGates-versus-baseline comparison at 35 W."""
    return SystemComparison(tdp_w=35.0)


@pytest.fixture(scope="session")
def darkgates_91w():
    """The DarkGates firmware configuration at 91 W."""
    return get_spec("darkgates", tdp_w=91.0).build()


@pytest.fixture(scope="session")
def baseline_91w():
    """The baseline firmware configuration at 91 W."""
    return get_spec("baseline", tdp_w=91.0).build()


# -- shared construction factories -----------------------------------------------------
#
# Raw (registry-free) system objects, as the PMU unit tests build them: no
# reliability margin, fuses straight from the FuseSet presets.  Memoised per
# TDP so repeated parametrisations share one instance.


@lru_cache(maxsize=None)
def _desktop_processor(tdp_w: float):
    return skylake_s_desktop(tdp_w)


@lru_cache(maxsize=None)
def _mobile_processor(tdp_w: float):
    return skylake_h_mobile(tdp_w)


@lru_cache(maxsize=None)
def _vf_curve(bypassed: bool) -> VfCurve:
    processor = _desktop_processor(91.0) if bypassed else _mobile_processor(91.0)
    return VfCurve(
        silicon=processor.die.vf_character,
        guardband_model=GuardbandModel(processor.package.pdn),
        virus_table=default_virus_table(processor.core_count),
        frequency_grid=processor.die.core_frequency_grid,
        vmax_v=processor.die.vmax_v,
    )


@lru_cache(maxsize=None)
def _darkgates_pcode(tdp_w: float) -> Pcode:
    return Pcode(_desktop_processor(tdp_w), FuseSet.darkgates_desktop())


@lru_cache(maxsize=None)
def _baseline_pcode(tdp_w: float) -> Pcode:
    return Pcode(_mobile_processor(tdp_w), FuseSet.legacy_desktop())


@lru_cache(maxsize=None)
def _dvfs_policy(tdp_w: float, bypassed: bool) -> DvfsPolicy:
    processor = (
        _desktop_processor(tdp_w) if bypassed else _mobile_processor(tdp_w)
    )
    return DvfsPolicy(processor, _vf_curve(bypassed), bypass_mode=bypassed)


@pytest.fixture(scope="session")
def desktop_processor():
    """Factory: the Skylake-S (bypassed) processor at a TDP level."""
    return _desktop_processor


@pytest.fixture(scope="session")
def mobile_processor():
    """Factory: the Skylake-H (gated) processor at a TDP level."""
    return _mobile_processor


@pytest.fixture(scope="session")
def vf_curve():
    """Factory: the guardbanded V/F curve of the gated or bypassed part."""
    return _vf_curve


@pytest.fixture(scope="session")
def darkgates_pcode():
    """Factory: a raw DarkGates Pcode (bypass fuses, no reliability margin)."""
    return _darkgates_pcode


@pytest.fixture(scope="session")
def baseline_pcode():
    """Factory: a raw baseline Pcode (gated fuses)."""
    return _baseline_pcode


@pytest.fixture(scope="session")
def dvfs_policy():
    """Factory: a DVFS policy for (tdp_w, bypassed)."""
    return _dvfs_policy
