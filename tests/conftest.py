"""Shared fixtures.

The guardband model runs an AC sweep of the PDN the first time it is asked
for a guardband, so system-level objects are cached at session scope to keep
the suite fast.
"""

from __future__ import annotations

import pytest

from repro.core.darkgates import SystemComparison
from repro.core.spec import get_spec
from repro.pdn.ladder import PdnConfiguration


@pytest.fixture(scope="session")
def gated_pdn() -> PdnConfiguration:
    """The default (power-gates enabled) PDN configuration."""
    return PdnConfiguration()


@pytest.fixture(scope="session")
def bypassed_pdn(gated_pdn: PdnConfiguration) -> PdnConfiguration:
    """The bypassed (DarkGates) PDN configuration."""
    return gated_pdn.with_bypass()


@pytest.fixture(scope="session")
def comparison_91w() -> SystemComparison:
    """DarkGates-versus-baseline comparison at 91 W."""
    return SystemComparison(tdp_w=91.0)


@pytest.fixture(scope="session")
def comparison_35w() -> SystemComparison:
    """DarkGates-versus-baseline comparison at 35 W."""
    return SystemComparison(tdp_w=35.0)


@pytest.fixture(scope="session")
def darkgates_91w():
    """The DarkGates firmware configuration at 91 W."""
    return get_spec("darkgates", tdp_w=91.0).build()


@pytest.fixture(scope="session")
def baseline_91w():
    """The baseline firmware configuration at 91 W."""
    return get_spec("baseline", tdp_w=91.0).build()
