"""Tests for the ``python -m repro`` command line, run in-process."""

from __future__ import annotations

import pytest

from repro.sim.engine import ENGINE_VERSION
from repro.store import RunIndex, RunStore
from repro.store.cli import main
from repro.store.manifest import RunManifest, utc_timestamp

TINY_SWEEP = [
    "run",
    "--spec",
    "darkgates",
    "--spec",
    "baseline",
    "--scenario",
    "sustained",
    "--tdp",
    "35",
    "--seed",
    "7",
    "--opt",
    "duration_s=4",
    "--opt",
    "time_step_s=1",
]


@pytest.fixture()
def store_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
    return tmp_path


def test_run_cold_then_warm(store_root, capsys):
    assert main(TINY_SWEEP) == 0
    cold = capsys.readouterr().out
    assert "2 task(s) executed, 0 served from the store" in cold
    assert "sustained" in cold
    assert "index: 2 run(s)" in cold

    assert main(TINY_SWEEP) == 0
    warm = capsys.readouterr().out
    assert "0 task(s) executed, 2 served from the store" in warm


def test_run_requires_exactly_one_workload_source(store_root, capsys):
    assert main(["run", "--spec", "darkgates"]) == 2
    assert "exactly one of --scenario" in capsys.readouterr().err
    assert (
        main(
            ["run", "--spec", "darkgates", "--scenario", "sustained", "--suite", "energy"]
        )
        == 2
    )


def test_run_suite_sweep(store_root, capsys):
    assert main(["run", "--spec", "darkgates", "--suite", "energy"]) == 0
    out = capsys.readouterr().out
    assert "RMT" in out
    assert "2 task(s) executed" in out
    assert main(["run", "--spec", "darkgates", "--suite", "bogus"]) == 2
    assert "unknown suite" in capsys.readouterr().err


def test_bad_opt_and_bad_scenario_are_clean_errors(store_root, capsys):
    assert main(TINY_SWEEP + ["--opt", "duration_s"]) == 2
    assert "expected key=value" in capsys.readouterr().err
    assert main(["run", "--spec", "darkgates", "--scenario", "bogus"]) == 2
    assert "known scenarios" in capsys.readouterr().err


def test_summarize_and_index(store_root, capsys):
    main(TINY_SWEEP)
    capsys.readouterr()
    assert main(["summarize", "--spec", "darkgates", "--kind", "dynamic"]) == 0
    out = capsys.readouterr().out
    assert "1 stored run(s)" in out
    assert "darkgates@35W" in out
    assert main(["index"]) == 0
    assert "indexed 2 run(s)" in capsys.readouterr().out


def test_summarize_rebuilds_missing_index(store_root, capsys):
    main(TINY_SWEEP)
    RunIndex(RunStore(store_root)).path.unlink()
    capsys.readouterr()
    assert main(["summarize"]) == 0
    assert "2 stored run(s)" in capsys.readouterr().out


def test_compare(store_root, capsys):
    main(TINY_SWEEP)
    capsys.readouterr()
    assert main(["compare", "--spec", "darkgates", "--spec", "baseline"]) == 0
    out = capsys.readouterr().out
    assert "darkgates vs baseline (1 shared cell(s))" in out
    assert "ratio" in out
    assert main(["compare", "--spec", "darkgates"]) == 2
    assert "exactly two" in capsys.readouterr().err
    assert (
        main(["compare", "--spec", "darkgates", "--spec", "darkgates+c7"]) == 2
    )
    assert "no stored cells" in capsys.readouterr().err


POPULATION_SWEEP = [
    "run",
    "--spec",
    "darkgates",
    "--scenario",
    "sustained",
    "--tdp",
    "35",
    "--population",
    "256",
    "--shard-size",
    "128",
    "--seed",
    "7",
    "--opt",
    "duration_s=4",
    "--opt",
    "time_step_s=1",
]


def test_run_population_streaming_cold_then_warm(store_root, capsys):
    assert main(POPULATION_SWEEP) == 0
    cold = capsys.readouterr().out
    # One cell split into 2 shards plus 2 binning shards, all executed.
    assert "4 task(s) executed, 0 served from the store" in cold
    assert "256 dice" in cold and "shard_size=128" in cold
    assert "yields[darkgates]:" in cold

    assert main(POPULATION_SWEEP) == 0
    warm = capsys.readouterr().out
    assert "0 task(s) executed, 4 served from the store" in warm
    # The warm pass reads the same merged statistics back from the store.
    assert warm.splitlines()[:3] == cold.splitlines()[:3]


def test_run_population_without_shard_size_uses_fast_path(store_root, capsys):
    argv = [arg for arg in POPULATION_SWEEP if arg not in ("--shard-size", "128")]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "method=fast" in out and "shard_size" not in out


def test_run_shard_size_requires_population(store_root, capsys):
    assert main(["run", "--spec", "darkgates", "--scenario", "sustained",
                 "--shard-size", "128"]) == 2
    assert "pass --population" in capsys.readouterr().err


def test_run_population_rejects_suite(store_root, capsys):
    assert main(["run", "--spec", "darkgates", "--suite", "spec2006",
                 "--population", "64"]) == 2
    assert "drop --suite" in capsys.readouterr().err


def test_gc_dry_run_then_apply(store_root, capsys):
    main(TINY_SWEEP)
    store = RunStore(store_root)
    store.put(
        RunManifest(
            run_id="a" * 64,
            kind="dynamic",
            workload_name="stale",
            engine_version="0",
            repro_version="test",
            created_at=utc_timestamp(),
        ),
        {"v": 1},
    )
    main(["index"])
    capsys.readouterr()

    assert main(["gc"]) == 0
    out = capsys.readouterr().out
    assert "would remove" in out and "stale" in out
    assert "dry run: 1 run(s) selected" in out
    assert len(store) == 3

    assert main(["gc", "--apply"]) == 0
    assert "removed 1 run(s)" in capsys.readouterr().out
    assert len(store) == 2
    assert RunIndex(store).count() == 2  # pruned alongside the artifacts
    assert all(
        manifest.engine_version == ENGINE_VERSION
        for manifest in store.iter_manifests()
    )

    assert main(["gc", "--all", "--apply"]) == 0
    assert len(store) == 0
