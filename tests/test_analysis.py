"""Tests for the experiment definitions and the reporting helpers."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_fig3_guardband_motivation,
    run_fig4_impedance_profiles,
    run_fig7_spec_per_benchmark,
    run_fig9_graphics_degradation,
    run_fig10_energy_efficiency,
    run_sec42_reliability_guardband,
    run_table1_package_cstates,
    run_table2_system_parameters,
)
from repro.analysis.reporting import format_percent, format_table
from repro.common.errors import ConfigurationError


# -- reporting -----------------------------------------------------------------------------------


def test_format_table_alignment_and_title():
    text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ConfigurationError):
        format_table(["a", "b"], [[1]])


def test_format_percent():
    assert format_percent(0.046) == "4.6%"
    assert format_percent(0.0203, decimals=2) == "2.03%"


# -- experiment smoke checks (full assertions live in benchmarks/) --------------------------------------


def test_fig4_result_structure():
    result = run_fig4_impedance_profiles(points_per_decade=15)
    assert result.gated.label == "gated"
    assert result.bypassed.label == "bypassed"
    assert result.mean_impedance_ratio > 1.0
    assert "Fig. 4" in result.as_text()


def test_fig7_result_structure(comparison_91w):
    result = run_fig7_spec_per_benchmark()
    assert len(result.per_benchmark_improvement) == 29
    assert result.max_improvement >= result.average_improvement
    assert result.best_benchmark() != result.worst_benchmark()
    assert "AVERAGE" in result.as_text()


def test_fig9_result_lookup():
    result = run_fig9_graphics_degradation(tdp_levels_w=(35.0, 91.0))
    assert result.degradation_at(35.0) >= result.degradation_at(91.0)
    with pytest.raises(ValueError):
        result.degradation_at(50.0)


def test_fig10_result_structure():
    result = run_fig10_energy_efficiency()
    assert set(result.reductions) == {"ENERGY STAR", "RMT"}
    for scenario, (c8_reduction, baseline_reduction) in result.reductions.items():
        assert 0.0 < c8_reduction < 1.0
        assert 0.0 < baseline_reduction < 1.0
        assert result.reference_power_w[scenario] > 0.0
    assert "Fig. 10" in result.as_text()


def test_fig3_result_structure():
    result = run_fig3_guardband_motivation(tdp_levels_w=(35.0, 95.0))
    assert set(result.improvements) == {
        "SPECfp_base",
        "SPECfp_rate",
        "SPECint_base",
        "SPECint_rate",
    }
    for values in result.improvements.values():
        assert len(values) == 2
        assert all(v > 0 for v in values)
    assert "Fig. 3" in result.as_text()


def test_table1_and_table2_experiments():
    table1 = run_table1_package_cstates()
    assert len(table1) == 8
    desktop, mobile = run_table2_system_parameters()
    assert desktop.package != mobile.package


def test_sec42_reliability_experiment():
    result = run_sec42_reliability_guardband()
    assert result.low_tdp_guardband_v > result.high_tdp_guardband_v
