"""Unit tests for package C-states, the power-budget manager, and Pcode."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.pmu.cstates import (
    PACKAGE_CSTATE_TABLE,
    PackageCState,
    PackageCStateModel,
    table1_rows,
)
from repro.pmu.dvfs import CpuDemand
from repro.pmu.fuses import FuseSet
from repro.pmu.pbm import GraphicsDemand, PowerBudgetManager
from repro.pmu.pcode import Pcode
from repro.soc.skus import skylake_h_mobile, skylake_s_desktop


# -- package C-state definitions (Table 1) ------------------------------------------------------


def test_table1_contains_all_states_of_the_paper():
    names = [state.value for state in PACKAGE_CSTATE_TABLE]
    assert names == ["C0", "C2", "C3", "C6", "C7", "C8", "C9", "C10"]


def test_table1_rows_have_descriptions():
    for state, description in table1_rows():
        assert isinstance(state, str) and state.startswith("C")
        assert len(description) > 20


def test_core_vr_on_boundary_is_between_c7_and_c8():
    assert PackageCState.C7.core_vr_on
    assert not PackageCState.C8.core_vr_on
    assert not PackageCState.C10.core_vr_on


def test_cstate_depth_ordering():
    assert PackageCState.C8.is_deeper_than(PackageCState.C7)
    assert not PackageCState.C2.is_deeper_than(PackageCState.C6)


def test_cstate_from_name():
    assert PackageCState.from_name("c8") is PackageCState.C8
    with pytest.raises(ConfigurationError):
        PackageCState.from_name("C99")


def test_c8_description_mentions_core_vr_off():
    assert "OFF" in PACKAGE_CSTATE_TABLE[PackageCState.C8]
    assert "ON" in PACKAGE_CSTATE_TABLE[PackageCState.C7]


# -- package C-state power model -----------------------------------------------------------------


@pytest.fixture(scope="module")
def cstate_models(desktop_processor, mobile_processor):
    darkgates = PackageCStateModel(desktop_processor(91.0), bypass_mode=True)
    baseline = PackageCStateModel(mobile_processor(91.0), bypass_mode=False)
    return darkgates, baseline


def test_c7_power_over_three_times_higher_with_bypass(cstate_models):
    # Section 4.3: package C7 power is more than 3x higher in DarkGates.
    darkgates, baseline = cstate_models
    ratio = darkgates.power_ratio_to(baseline, PackageCState.C7)
    assert ratio > 3.0


def test_c8_power_equal_between_configurations(cstate_models):
    # With the core VR off, bypassing no longer matters.
    darkgates, baseline = cstate_models
    assert darkgates.power_w(PackageCState.C8) == pytest.approx(
        baseline.power_w(PackageCState.C8)
    )


def test_darkgates_c8_much_lower_than_darkgates_c7(cstate_models):
    darkgates, _ = cstate_models
    assert darkgates.power_w(PackageCState.C8) < 0.5 * darkgates.power_w(PackageCState.C7)


def test_cstate_power_decreases_with_depth_per_configuration(cstate_models):
    for model in cstate_models:
        powers = [
            model.power_w(state)
            for state in (PackageCState.C2, PackageCState.C3, PackageCState.C6, PackageCState.C7)
        ]
        assert all(a >= b for a, b in zip(powers, powers[1:]))


def test_cstate_breakdown_sums_to_total(cstate_models):
    darkgates, _ = cstate_models
    breakdown = darkgates.breakdown(PackageCState.C7)
    assert breakdown.total_w == pytest.approx(
        breakdown.cores_leakage_w
        + breakdown.uncore_w
        + breakdown.vr_overhead_w
        + breakdown.platform_floor_w
    )


def test_cstate_c0_is_not_an_idle_state(cstate_models):
    darkgates, _ = cstate_models
    with pytest.raises(ConfigurationError):
        darkgates.power_w(PackageCState.C0)


def test_cstate_idle_states_enumeration(cstate_models):
    darkgates, _ = cstate_models
    assert PackageCState.C0 not in darkgates.idle_states()
    assert PackageCState.C8 in darkgates.idle_states()


def test_cstate_core_leakage_zero_when_vr_off(cstate_models):
    darkgates, _ = cstate_models
    assert darkgates.breakdown(PackageCState.C8).cores_leakage_w == 0.0
    assert darkgates.breakdown(PackageCState.C7).cores_leakage_w > 0.3


# -- power budget manager -------------------------------------------------------------------------


def test_pbm_budget_split_accounts_for_all_domains(darkgates_pcode):
    pcode = darkgates_pcode(45.0)
    point = pcode.resolve_graphics_operating_point(GraphicsDemand())
    assert point.package_power_w == pytest.approx(
        point.cpu_power_w
        + point.idle_cores_power_w
        + point.uncore_power_w
        + point.graphics_power_w
    )
    assert point.package_power_w <= 45.0 + 1e-6


def test_pbm_graphics_frequency_higher_at_higher_tdp(baseline_pcode):
    low = baseline_pcode(35.0)
    high = baseline_pcode(91.0)
    demand = GraphicsDemand()
    assert (
        high.resolve_graphics_operating_point(demand).graphics_frequency_hz
        >= low.resolve_graphics_operating_point(demand).graphics_frequency_hz
    )


def test_pbm_bypass_mode_has_idle_core_leakage(darkgates_pcode, baseline_pcode):
    darkgates = darkgates_pcode(35.0)
    baseline = baseline_pcode(35.0)
    demand = GraphicsDemand()
    dg_point = darkgates.resolve_graphics_operating_point(demand)
    base_point = baseline.resolve_graphics_operating_point(demand)
    assert dg_point.idle_cores_power_w > base_point.idle_cores_power_w
    assert dg_point.graphics_budget_w < base_point.graphics_budget_w


def test_pbm_graphics_budget_not_binding_at_high_tdp(darkgates_pcode, baseline_pcode):
    darkgates = darkgates_pcode(91.0)
    baseline = baseline_pcode(91.0)
    demand = GraphicsDemand()
    assert (
        darkgates.resolve_graphics_operating_point(demand).graphics_frequency_hz
        == baseline.resolve_graphics_operating_point(demand).graphics_frequency_hz
    )


def test_pbm_rejects_too_many_driver_cores(darkgates_pcode):
    pcode = darkgates_pcode(45.0)
    with pytest.raises(ConfigurationError):
        pcode.resolve_graphics_operating_point(GraphicsDemand(driver_cores=9))


def test_graphics_demand_validation():
    with pytest.raises(ConfigurationError):
        GraphicsDemand(graphics_activity=1.4)
    with pytest.raises(ConfigurationError):
        GraphicsDemand(driver_cores=0)


# -- Pcode facade ------------------------------------------------------------------------------------


def test_pcode_rejects_mismatched_fuses_and_package():
    with pytest.raises(ConfigurationError):
        Pcode(skylake_h_mobile(), FuseSet.darkgates_desktop())
    with pytest.raises(ConfigurationError):
        Pcode(skylake_s_desktop(), FuseSet.legacy_desktop())


def test_pcode_deepest_cstate_follows_fuses(darkgates_pcode, baseline_pcode):
    darkgates = darkgates_pcode(91.0)
    baseline = baseline_pcode(91.0)
    assert darkgates.deepest_package_cstate() is PackageCState.C8
    assert baseline.deepest_package_cstate() is PackageCState.C7


def test_pcode_refuses_deeper_than_supported_cstate(baseline_pcode):
    baseline = baseline_pcode(91.0)
    with pytest.raises(ConfigurationError):
        baseline.package_idle_power_w(PackageCState.C8)


def test_pcode_idle_power_defaults_to_deepest(darkgates_pcode):
    darkgates = darkgates_pcode(91.0)
    assert darkgates.package_idle_power_w() == pytest.approx(
        darkgates.package_idle_power_w(PackageCState.C8)
    )


def test_pcode_cpu_resolution_exposed(darkgates_91w):
    point = darkgates_91w.resolve_cpu_operating_point(CpuDemand(active_cores=1))
    assert point.frequency_hz > 3.5e9


def test_pcode_turbo_table_consistent_with_vf_curve(darkgates_91w):
    table = darkgates_91w.turbo_table()
    assert table.single_core_turbo_hz() == pytest.approx(darkgates_91w.vf_curve.fmax_hz(1))


def test_pcode_describe_mentions_mode(darkgates_91w, baseline_91w):
    assert "bypass" in darkgates_91w.describe()
    assert "normal" in baseline_91w.describe()


def test_pcode_reliability_margin_raises_guardband():
    plain = Pcode(skylake_s_desktop(), FuseSet.darkgates_desktop())
    margined = Pcode(
        skylake_s_desktop(), FuseSet.darkgates_desktop(), reliability_margin_v=0.02
    )
    assert margined.vf_curve.guardband_v(1) == pytest.approx(
        plain.vf_curve.guardband_v(1) + 0.02
    )


# -- C-state name resolution (case-insensitivity bugfix) ----------------------------------------


def test_cstate_from_name_is_case_insensitive():
    assert PackageCState.from_name("c8") is PackageCState.C8
    assert PackageCState.from_name("C8") is PackageCState.C8
    assert PackageCState.from_name(" c10 ") is PackageCState.C10


def test_cstate_from_name_error_lists_valid_names():
    with pytest.raises(ConfigurationError) as excinfo:
        PackageCState.from_name("C42")
    message = str(excinfo.value)
    assert "C42" in message
    for name in ("C0", "C2", "C7", "C10"):
        assert name in message


def test_fuse_set_normalizes_cstate_case():
    lower = FuseSet.darkgates_desktop()
    mixed = FuseSet(
        power_delivery_mode=lower.power_delivery_mode,
        deepest_package_cstate="c8",
        segment="desktop",
    )
    assert mixed.deepest_package_cstate == "C8"
    assert mixed == lower


def test_fuse_set_rejects_bad_cstate_with_valid_names():
    with pytest.raises(ConfigurationError) as excinfo:
        FuseSet.darkgates_desktop().__class__(
            power_delivery_mode=FuseSet.darkgates_desktop().power_delivery_mode,
            deepest_package_cstate="C1",
        )
    assert "C7" in str(excinfo.value)


# -- wake rail voltage --------------------------------------------------------------------------


def test_wake_rail_voltage_is_the_min_frequency_voltage(darkgates_pcode):
    pcode = darkgates_pcode(91.0)
    grid = pcode.processor.die.core_frequency_grid
    expected = pcode.vf_curve.required_voltage_v(grid.min_hz, 1)
    assert pcode.wake_rail_voltage_v() == pytest.approx(expected)
    # More woken cores never lower the guardbanded rail requirement.
    assert pcode.wake_rail_voltage_v(active_cores=4) >= pcode.wake_rail_voltage_v()
    with pytest.raises(ConfigurationError):
        pcode.wake_rail_voltage_v(active_cores=0)
