"""Deprecation enforcement.

Every deprecated shim must warn through the shared
:func:`repro.common.deprecation.warn_deprecated` helper — on every call
path, including the package-level re-exports — and nothing inside the
library may still call a shim (which would bury the warning where no user
sees it).  These tests make the deprecations enforceable: a silent shim or
a lingering internal caller fails the suite.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import pytest

import repro
import repro.core
from repro.common.deprecation import warn_deprecated
from repro.core.darkgates import (
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)

FACTORY_SHIMS = {
    "darkgates_system": (darkgates_system, "darkgates"),
    "baseline_system": (baseline_system, "baseline"),
    "darkgates_c7_limited_system": (darkgates_c7_limited_system, "darkgates+c7"),
}


def test_warn_deprecated_message_and_category():
    with pytest.warns(DeprecationWarning, match=r"old\(\) is deprecated; use new"):
        warn_deprecated("old()", "new", stacklevel=2)


@pytest.mark.parametrize("name", sorted(FACTORY_SHIMS))
def test_factory_shim_warns_exactly_once_naming_replacement(name):
    shim, spec_name = FACTORY_SHIMS[name]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim(91.0)
    deprecations = [
        entry for entry in caught if entry.category is DeprecationWarning
    ]
    assert len(deprecations) == 1, f"{name} should warn exactly once per call"
    message = str(deprecations[0].message)
    assert name in message and "get_spec" in message and spec_name in message


@pytest.mark.parametrize("module", [repro, repro.core])
@pytest.mark.parametrize("name", sorted(FACTORY_SHIMS))
def test_factory_shims_warn_through_package_reexports(module, name):
    with pytest.warns(DeprecationWarning, match=re.escape(name)):
        getattr(module, name)(91.0)


def test_no_silent_internal_callers_of_deprecated_factories():
    """The library itself must not call the shims (warnings would be buried)."""
    src_root = Path(repro.__file__).parent
    pattern = re.compile(
        r"^(?!\s*def\s)(?!.*[\"'#]).*\b"
        r"(darkgates_system|baseline_system|darkgates_c7_limited_system)\s*\("
    )
    offenders = []
    for path in src_root.rglob("*.py"):
        if path.name == "darkgates.py" and path.parent.name == "core":
            continue
        for line_number, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.match(line):
                offenders.append(f"{path.relative_to(src_root)}:{line_number}")
    assert not offenders, f"internal deprecated-factory callers: {offenders}"
