"""Deprecation enforcement.

Every deprecated shim must warn through the shared
:func:`repro.common.deprecation.warn_deprecated` helper — on every call
path, including the package-level re-exports — and nothing inside the
library may still call a shim (which would bury the warning where no user
sees it).  These tests make the deprecations enforceable: a silent shim or
a lingering internal caller fails the suite.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import pytest

import repro
import repro.core
from repro.analysis.study import Study
from repro.common.deprecation import warn_deprecated
from repro.core.darkgates import (
    baseline_system,
    darkgates_c7_limited_system,
    darkgates_system,
)

FACTORY_SHIMS = {
    "darkgates_system": (darkgates_system, "darkgates"),
    "baseline_system": (baseline_system, "baseline"),
    "darkgates_c7_limited_system": (darkgates_c7_limited_system, "darkgates+c7"),
}


def test_warn_deprecated_message_and_category():
    with pytest.warns(DeprecationWarning, match=r"old\(\) is deprecated; use new"):
        warn_deprecated("old()", "new", stacklevel=2)


@pytest.mark.parametrize("name", sorted(FACTORY_SHIMS))
def test_factory_shim_warns_exactly_once_naming_replacement(name):
    shim, spec_name = FACTORY_SHIMS[name]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim(91.0)
    deprecations = [
        entry for entry in caught if entry.category is DeprecationWarning
    ]
    assert len(deprecations) == 1, f"{name} should warn exactly once per call"
    message = str(deprecations[0].message)
    assert name in message and "get_spec" in message and spec_name in message


@pytest.mark.parametrize("module", [repro, repro.core])
@pytest.mark.parametrize("name", sorted(FACTORY_SHIMS))
def test_factory_shims_warn_through_package_reexports(module, name):
    with pytest.warns(DeprecationWarning, match=re.escape(name)):
        getattr(module, name)(91.0)


def test_no_silent_internal_callers_of_deprecated_factories():
    """The library itself must not call the shims (warnings would be buried)."""
    src_root = Path(repro.__file__).parent
    pattern = re.compile(
        r"^(?!\s*def\s)(?!.*[\"'#]).*\b"
        r"(darkgates_system|baseline_system|darkgates_c7_limited_system)\s*\("
    )
    offenders = []
    for path in src_root.rglob("*.py"):
        if path.name == "darkgates.py" and path.parent.name == "core":
            continue
        for line_number, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.match(line):
                offenders.append(f"{path.relative_to(src_root)}:{line_number}")
    assert not offenders, f"internal deprecated-factory callers: {offenders}"


# -- sweep-request signature migration (1.3) -------------------------------------------


def test_over_dynamics_positional_options_warn_and_still_work():
    """1.2-style positional trailing options keep working behind a warning."""
    from repro.workloads.dynamics import sustained_scenario

    scenario = sustained_scenario()
    with pytest.warns(DeprecationWarning, match=r"Study\.over_dynamics.*keyword"):
        legacy = Study.over_dynamics(("darkgates",), (scenario,), (35.0,))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        modern = Study.over_dynamics(
            ("darkgates",), (scenario,), tdp_levels_w=(35.0,)
        )
    assert len(legacy) == len(modern)


def test_over_transients_positional_options_warn():
    from repro.pdn.transients import paper_transient_scenarios

    trace = paper_transient_scenarios()[0].trace
    with pytest.warns(DeprecationWarning, match=r"Study\.over_transients.*keyword"):
        Study.over_transients(("darkgates",), (trace,), (0.5e-9,))


def test_over_population_positional_tdp_warns():
    from repro.variation.distributions import skylake_process_variation
    from repro.workloads.dynamics import sustained_scenario

    with pytest.warns(DeprecationWarning, match=r"Study\.over_population.*keyword"):
        Study.over_population(
            ("darkgates",),
            (sustained_scenario(),),
            skylake_process_variation(),
            16,
            (35.0,),
        )


def test_keyword_callers_never_warn():
    """The modern keyword form is warning-free on every entry point."""
    from repro.workloads.dynamics import sustained_scenario

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        Study.over_dynamics(
            ("darkgates",), (sustained_scenario(),), tdp_levels_w=(35.0,)
        )
