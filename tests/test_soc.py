"""Unit tests for the SoC substrate: cores, graphics, uncore, die, package, SKUs."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.pdn.ladder import PdnConfiguration
from repro.soc.core import CpuCore
from repro.soc.die import Die, SiliconVfCharacter, skylake_client_die
from repro.soc.graphics import GraphicsEngine
from repro.soc.package import Package, PackageKind, desktop_package, mobile_package
from repro.soc.processor import Processor
from repro.soc.skus import (
    SKYLAKE_TDP_LEVELS_W,
    broadwell_desktop,
    sku_descriptions,
    skylake_h_mobile,
    skylake_s_desktop,
)
from repro.soc.uncore import Uncore


# -- CPU core -----------------------------------------------------------------------------


def test_core_active_power_increases_with_frequency_and_voltage():
    core = CpuCore(name="core0")
    low = core.active_power_w(2e9, 0.9, 0.6)
    high_f = core.active_power_w(3e9, 0.9, 0.6)
    high_v = core.active_power_w(2e9, 1.1, 0.6)
    assert high_f > low
    assert high_v > low


def test_core_idle_power_gated_much_lower_than_ungated():
    core = CpuCore(name="core0")
    gated = core.idle_power_w(1.0, gated=True)
    ungated = core.idle_power_w(1.0, gated=False)
    assert gated < 0.1 * ungated


def test_core_active_power_rejects_bad_activity():
    core = CpuCore(name="core0")
    with pytest.raises(ConfigurationError):
        core.active_power_w(2e9, 1.0, 1.5)


def test_core_virus_current_scales_with_frequency():
    core = CpuCore(name="core0")
    assert core.virus_current_a(4e9, 1.2) > core.virus_current_a(2e9, 1.2)


def test_core_power_gate_area_overhead_significant():
    # The paper motivates DarkGates with the >1% area cost of core-level
    # power-gates; the default core uses a few percent of its area.
    core = CpuCore(name="core0")
    assert 0.01 <= core.power_gate_area_overhead() <= 0.10


# -- graphics engine -----------------------------------------------------------------------


def test_graphics_frequency_grid_matches_table2():
    graphics = GraphicsEngine()
    assert graphics.frequency_grid.min_hz == pytest.approx(300e6)
    assert graphics.frequency_grid.max_hz == pytest.approx(1150e6)


def test_graphics_power_increases_with_frequency():
    graphics = GraphicsEngine()
    assert graphics.active_power_w(1.1e9) > graphics.active_power_w(0.6e9)


def test_graphics_max_frequency_within_power_monotonic():
    graphics = GraphicsEngine()
    small = graphics.max_frequency_within_power(8.0)
    large = graphics.max_frequency_within_power(30.0)
    assert large >= small
    assert graphics.frequency_grid.min_hz <= small <= graphics.frequency_grid.max_hz


def test_graphics_min_frequency_returned_when_budget_tiny():
    graphics = GraphicsEngine()
    assert graphics.max_frequency_within_power(0.1) == pytest.approx(
        graphics.frequency_grid.min_hz
    )


def test_graphics_idle_power_is_small():
    assert GraphicsEngine().idle_power_w() < 0.2


# -- uncore ---------------------------------------------------------------------------------


def test_uncore_active_power_grows_with_memory_intensity():
    uncore = Uncore()
    assert uncore.package_c0_power_w(1.0) > uncore.package_c0_power_w(0.0)


def test_uncore_idle_power_decreases_with_state_depth():
    uncore = Uncore()
    powers = [uncore.package_idle_power_w(s) for s in ("C2", "C3", "C6", "C7", "C8", "C10")]
    assert all(a >= b for a, b in zip(powers, powers[1:]))


def test_uncore_unknown_state_raises():
    with pytest.raises(ConfigurationError, match="C99"):
        Uncore().package_idle_power_w("C99")


def test_uncore_rejects_non_monotonic_idle_powers():
    with pytest.raises(ConfigurationError, match="non-increasing"):
        Uncore(c3_power_w=0.1, c6_power_w=0.5)


# -- silicon V/F character ---------------------------------------------------------------------


def test_vf_character_monotonic():
    silicon = SiliconVfCharacter()
    assert silicon.nominal_voltage_v(4e9) > silicon.nominal_voltage_v(2e9)


def test_vf_character_inverse_round_trip():
    silicon = SiliconVfCharacter()
    for f in (1e9, 2.5e9, 4.0e9):
        voltage = silicon.nominal_voltage_v(f)
        assert silicon.max_frequency_for_voltage(voltage) == pytest.approx(f, rel=1e-6)


def test_vf_character_below_v0_gives_zero_frequency():
    silicon = SiliconVfCharacter(v0=0.6)
    assert silicon.max_frequency_for_voltage(0.5) == 0.0


def test_vf_character_slope_steepens_with_frequency():
    silicon = SiliconVfCharacter()
    assert silicon.slope_at(4e9) > silicon.slope_at(1e9)


def test_vf_character_linear_fallback():
    silicon = SiliconVfCharacter(curvature_v_per_ghz2=0.0)
    voltage = silicon.nominal_voltage_v(3e9)
    assert silicon.max_frequency_for_voltage(voltage) == pytest.approx(3e9, rel=1e-9)


def test_vf_character_skylake_range_is_plausible():
    silicon = SiliconVfCharacter()
    assert 0.6 <= silicon.nominal_voltage_v(0.8e9) <= 0.85
    assert 1.1 <= silicon.nominal_voltage_v(4.2e9) <= 1.35


# -- die -------------------------------------------------------------------------------------


def test_skylake_die_has_four_cores():
    die = skylake_client_die()
    assert die.core_count == 4
    assert die.process_nm == 14


def test_die_requires_at_least_one_core():
    with pytest.raises(ConfigurationError):
        Die(name="empty", cores=[])


def test_die_power_gate_area_fraction():
    die = skylake_client_die()
    fraction = die.power_gate_die_area_fraction()
    assert 0.0 < fraction < 0.05
    assert die.total_power_gate_area_mm2() == pytest.approx(
        sum(c.power_gate.area_mm2 for c in die.cores)
    )


def test_die_cores_leakage_sums_over_cores():
    die = skylake_client_die()
    single = die.cores[0].leakage.power_w(1.0, 60.0)
    assert die.cores_leakage_w(1.0, 60.0) == pytest.approx(4 * single)


def test_die_vmax_exceeds_vmin():
    die = skylake_client_die()
    assert die.vmax_v > die.vmin_v


# -- package ------------------------------------------------------------------------------------


def test_desktop_package_is_lga_and_bypassed():
    package = desktop_package(PdnConfiguration())
    assert package.kind is PackageKind.LGA
    assert package.bypass_power_gates
    assert package.pdn.bypassed
    assert not package.supports_core_power_gating()


def test_mobile_package_is_bga_and_gated():
    package = mobile_package(PdnConfiguration())
    assert package.kind is PackageKind.BGA
    assert not package.bypass_power_gates
    assert package.supports_core_power_gating()


def test_package_voltage_domains():
    gated = mobile_package(PdnConfiguration())
    bypassed = desktop_package(PdnConfiguration())
    assert gated.domain_count() == 5  # VCU plus one per core
    assert bypassed.domain_count() == 1


def test_package_rejects_inconsistent_pdn_flag():
    with pytest.raises(ConfigurationError):
        Package(
            name="broken",
            kind=PackageKind.LGA,
            bypass_power_gates=True,
            pdn=PdnConfiguration(),  # not bypassed
        )


def test_package_describe_mentions_gating():
    assert "bypassed" in desktop_package(PdnConfiguration()).describe()
    assert "enabled" in mobile_package(PdnConfiguration()).describe()


# -- SKUs and processor ---------------------------------------------------------------------------


def test_skylake_s_is_bypassed_and_h_is_gated():
    assert skylake_s_desktop().power_gates_bypassed
    assert not skylake_h_mobile().power_gates_bypassed


def test_both_skylake_skus_share_die_characteristics():
    desktop = skylake_s_desktop()
    mobile = skylake_h_mobile()
    assert desktop.core_count == mobile.core_count == 4
    assert desktop.die.vmax_v == mobile.die.vmax_v
    assert desktop.die.uncore.llc_mb == mobile.die.uncore.llc_mb == 8.0


def test_processor_with_tdp_reconfiguration():
    processor = skylake_s_desktop(91.0)
    reconfigured = processor.with_tdp(35.0)
    assert reconfigured.tdp_w == pytest.approx(35.0)
    assert reconfigured.die is processor.die


def test_processor_thermal_model_uses_tdp():
    processor = skylake_s_desktop(65.0)
    assert processor.thermal_model().max_sustained_power_w() == pytest.approx(65.0)


def test_processor_rejects_non_positive_tdp():
    with pytest.raises(ConfigurationError):
        Processor(
            name="bad",
            die=skylake_client_die(),
            package=desktop_package(PdnConfiguration()),
            tdp_w=0.0,
        )


def test_tdp_levels_match_paper():
    assert SKYLAKE_TDP_LEVELS_W == (35.0, 45.0, 65.0, 91.0)


def test_broadwell_is_gated_with_lower_ceiling():
    broadwell = broadwell_desktop()
    skylake = skylake_s_desktop()
    assert not broadwell.power_gates_bypassed
    assert broadwell.die.vmax_v < skylake.die.vmax_v


def test_table2_sku_descriptions():
    desktop, mobile = sku_descriptions()
    assert desktop.name == "i7-6700K"
    assert mobile.name == "i7-6920HQ"
    assert desktop.core_frequency_range_ghz == (0.8, 4.2)
    assert desktop.graphics_frequency_range_mhz == (300.0, 1150.0)
    assert desktop.llc_mb == 8.0
    assert desktop.tdp_range_w == (35.0, 91.0)
    assert desktop.process_nm == mobile.process_nm == 14


def test_processor_describe_contains_tdp():
    assert "91" in skylake_s_desktop(91.0).describe()
