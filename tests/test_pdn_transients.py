"""Tests for the vectorized droop solver and the transient-scenario subsystem.

Covers the droop-solver regression suite of the transient rework:

* analytic single-stage RLC step response versus the simulator,
* vectorized-versus-reference-RK4 waveform equivalence (max |dV| bound),
* the exact piecewise-linear discretization at coarse steps,
* gated-versus-bypassed worst-droop ordering per Fig. 6, and
* the LoadTrace / TraceBuilder / TransientScenario declarative layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.pdn.droop import DroopResult, DroopSimulator
from repro.pdn.ladder import LadderStage, SkylakePdnBuilder
from repro.pdn.transients import (
    LoadTrace,
    TraceBuilder,
    TransientScenario,
    avx_burst_trace,
    core_wake_trace,
    multi_event_trace,
    paper_transient_scenarios,
    staggered_wake_trace,
    step_trace,
)

# -- analytic regression -------------------------------------------------------------------------


def _underdamped_stage() -> list[LadderStage]:
    # One series R-L into a shunt C without ESR: the classic series RLC whose
    # current-step response has a closed form.
    return [
        LadderStage(
            name="rlc",
            series_resistance_ohm=5e-3,
            series_inductance_h=1e-9,
            shunt_capacitance_f=1e-6,
            shunt_esr_ohm=0.0,
        )
    ]


def _analytic_rlc_ramp_step(times, nominal_v, R, L, C, step_a, rise_s):
    """Closed-form node voltage for a current ramp 0 -> I over [0, rise_s].

    From the branch equations ``L i_L' = V - v - R i_L`` and
    ``C v' = i_L - i_load``: ``LC v'' + RC v' + v = V - R i - L i'``.
    """
    alpha = R / (2.0 * L)
    omega = np.sqrt(1.0 / (L * C) - alpha**2)

    def decay(t, amp_cos, amp_sin):
        return np.exp(-alpha * t) * (
            amp_cos * np.cos(omega * t) + amp_sin * np.sin(omega * t)
        )

    def decay_prime(t, amp_cos, amp_sin):
        return np.exp(-alpha * t) * (
            (-alpha * amp_cos + omega * amp_sin) * np.cos(omega * t)
            + (-alpha * amp_sin - omega * amp_cos) * np.sin(omega * t)
        )

    # Ramp phase: particular solution linear in t.
    slope = -R * step_a / rise_s
    offset = nominal_v - L * step_a / rise_s - R * C * slope
    amp_cos_1 = nominal_v - offset
    amp_sin_1 = (alpha * amp_cos_1 - slope) / omega

    # Step phase, continuing from the ramp end state.
    v_final = nominal_v - R * step_a
    v_at_rise = slope * rise_s + offset + decay(rise_s, amp_cos_1, amp_sin_1)
    dv_at_rise = slope + decay_prime(rise_s, amp_cos_1, amp_sin_1)
    amp_cos_2 = v_at_rise - v_final
    amp_sin_2 = (dv_at_rise + alpha * amp_cos_2) / omega

    ramp = slope * times + offset + decay(times, amp_cos_1, amp_sin_1)
    step = v_final + decay(times - rise_s, amp_cos_2, amp_sin_2)
    return np.where(times <= rise_s, ramp, step)


@pytest.mark.parametrize("method", ["scan", "matvec", "exact", "reference"])
def test_droop_matches_analytic_rlc_step(method):
    stage = _underdamped_stage()[0]
    simulator = DroopSimulator(_underdamped_stage(), nominal_voltage_v=1.0)
    result = simulator.simulate_current_step(
        step_current_a=10.0,
        rise_time_s=2e-9,
        duration_s=1e-6,
        time_step_s=0.1e-9,
        method=method,
    )
    analytic = _analytic_rlc_ramp_step(
        result.time_s,
        1.0,
        stage.series_resistance_ohm,
        stage.series_inductance_h,
        stage.shunt_capacitance_f,
        10.0,
        2e-9,
    )
    assert np.abs(result.load_voltage_v - analytic).max() < 1e-6


# -- vectorized-versus-reference equivalence ------------------------------------------------------


@pytest.fixture(scope="module")
def gated_simulator(gated_pdn):
    return DroopSimulator(SkylakePdnBuilder(gated_pdn).build_ladder(), 1.0)


@pytest.fixture(scope="module")
def bypassed_simulator(bypassed_pdn):
    return DroopSimulator(SkylakePdnBuilder(bypassed_pdn).build_ladder(), 1.0)


def test_vectorized_matches_reference_on_core_wake(gated_simulator, bypassed_simulator):
    trace = core_wake_trace()
    for simulator in (gated_simulator, bypassed_simulator):
        reference = simulator.simulate_profile(
            trace, trace.duration_s, method="reference"
        )
        for method in ("scan", "matvec"):
            vectorized = simulator.simulate_profile(
                trace, trace.duration_s, method=method
            )
            delta = np.abs(
                vectorized.load_voltage_v - reference.load_voltage_v
            ).max()
            assert delta <= 1e-4  # acceptance bound; actual agreement ~1e-12
            assert delta <= 1e-9


@pytest.mark.parametrize(
    "trace_builder", [avx_burst_trace, staggered_wake_trace, multi_event_trace]
)
def test_vectorized_matches_reference_on_scenarios(gated_simulator, trace_builder):
    trace = trace_builder()
    duration = min(trace.duration_s, 1e-6)
    reference = gated_simulator.simulate_profile(trace, duration, method="reference")
    vectorized = gated_simulator.simulate_profile(trace, duration, method="scan")
    assert np.abs(vectorized.load_voltage_v - reference.load_voltage_v).max() <= 1e-9


def test_exact_method_accurate_at_coarse_steps(gated_simulator):
    fine = gated_simulator.simulate_current_step(
        25.0, duration_s=2e-6, time_step_s=0.5e-9, method="scan"
    )
    coarse = gated_simulator.simulate_current_step(
        25.0, duration_s=2e-6, time_step_s=4e-9, method="exact"
    )
    assert coarse.worst_droop_v == pytest.approx(fine.worst_droop_v, abs=5e-5)


def test_simulator_rejects_unknown_method(gated_simulator):
    with pytest.raises(ConfigurationError):
        gated_simulator.simulate_current_step(10.0, method="euler")
    with pytest.raises(ConfigurationError):
        DroopSimulator(_underdamped_stage(), method="euler")


# -- Fig. 6 ordering ------------------------------------------------------------------------------


@pytest.mark.parametrize(
    "trace_builder",
    [core_wake_trace, avx_burst_trace, staggered_wake_trace, multi_event_trace],
)
def test_gated_droop_worse_than_bypassed_per_scenario(
    gated_simulator, bypassed_simulator, trace_builder
):
    trace = trace_builder()
    gated = gated_simulator.simulate_profile(trace, trace.duration_s)
    bypassed = bypassed_simulator.simulate_profile(trace, trace.duration_s)
    assert gated.worst_droop_v > bypassed.worst_droop_v


# -- settled-drop / endpoint bugfixes -------------------------------------------------------------


def test_settled_drop_never_exceeds_worst_droop_on_short_runs(gated_simulator):
    # A run cut off mid-transient: the old fixed tail window averaged
    # transient samples and could push settled above worst, clamping the
    # overshoot to zero after it first went negative.
    trace = core_wake_trace(duration_s=4e-6)
    for duration in (0.3e-6, 0.6e-6, 1.2e-6, 4e-6):
        result = gated_simulator.simulate_profile(trace, duration)
        assert result.settled_drop_v <= result.worst_droop_v + 1e-12
        assert result.transient_overshoot_v >= 0.0


def test_settled_drop_detects_settled_tail():
    simulator = DroopSimulator(_underdamped_stage(), nominal_voltage_v=1.0)
    result = simulator.simulate_current_step(step_current_a=20.0, duration_s=5e-6)
    # Fully settled run: detection agrees with the analytic R*I DC drop.
    assert result.settled_drop_v == pytest.approx(
        20.0 * 5e-3, rel=0.05
    )
    assert result.final_dc_drop_v == pytest.approx(20.0 * 5e-3, rel=1e-9)


def test_settle_detection_on_hand_built_result():
    # Synthetic waveform whose last fifth still contains a large transient:
    # a fixed -len//50 window average would report a settled level far below
    # the true plateau.
    times = np.linspace(0.0, 1e-6, 201)
    voltages = np.full(201, 1.0)
    voltages[100:] = 0.95
    voltages[190:] = 0.80  # late glitch, not settled
    result = DroopResult(time_s=times, load_voltage_v=voltages, nominal_voltage_v=1.0)
    assert result.settled_drop_v == pytest.approx(0.20, abs=1e-9)
    assert result.transient_overshoot_v >= 0.0


def test_last_sample_never_overshoots_duration(gated_simulator):
    duration = 1.0001e-6
    step = 0.3e-9
    result = gated_simulator.simulate_current_step(
        10.0, duration_s=duration, time_step_s=step
    )
    assert result.time_s[-1] <= duration + 1e-18
    assert result.time_s[-1] > duration - 2 * step


def test_too_short_duration_still_rejected(gated_simulator):
    with pytest.raises(SimulationError):
        gated_simulator.simulate_current_step(
            1.0, duration_s=1e-10, time_step_s=1e-9
        )


# -- LoadTrace / TraceBuilder ---------------------------------------------------------------------


def test_load_trace_sampling_and_calling():
    trace = LoadTrace(
        name="ramp", times_s=(0.0, 1e-6, 2e-6), currents_a=(1.0, 3.0, 3.0)
    )
    assert trace.current_a(0.5e-6) == pytest.approx(2.0)
    assert trace(1.5e-6) == pytest.approx(3.0)
    assert trace.sample(np.array([0.0, 0.5e-6, 5e-6])) == pytest.approx(
        [1.0, 2.0, 3.0]
    )
    assert trace.duration_s == 2e-6
    assert trace.peak_current_a == 3.0
    assert trace.initial_current_a == 1.0
    assert trace.final_current_a == 3.0


def test_load_trace_validation():
    with pytest.raises(ConfigurationError):
        LoadTrace(name="", times_s=(0.0, 1e-9), currents_a=(0.0, 1.0))
    with pytest.raises(ConfigurationError):
        LoadTrace(name="x", times_s=(0.0,), currents_a=(0.0,))
    with pytest.raises(ConfigurationError):
        LoadTrace(name="x", times_s=(1e-9, 2e-9), currents_a=(0.0, 1.0))
    with pytest.raises(ConfigurationError):
        LoadTrace(name="x", times_s=(0.0, 0.0), currents_a=(0.0, 1.0))
    with pytest.raises(ConfigurationError):
        LoadTrace(name="x", times_s=(0.0, 1e-9), currents_a=(0.0, -1.0))
    with pytest.raises(ConfigurationError):
        LoadTrace(name="x", times_s=(0.0, 1e-9, 2e-9), currents_a=(0.0, 1.0))


def test_load_trace_composition():
    wake = step_trace("wake", 10.0, duration_s=1e-6)
    burst = step_trace("burst", 20.0, initial_current_a=10.0, duration_s=1e-6)
    combined = wake.then(burst)
    assert combined.duration_s == pytest.approx(2e-6)
    assert combined.current_a(1.5e-6) == pytest.approx(20.0)

    pair = wake.overlay(wake.shifted(0.5e-6), name="pair")
    assert pair.current_a(0.75e-6) == pytest.approx(20.0)
    assert pair.name == "pair"

    scaled = wake.scaled(0.5)
    assert scaled.peak_current_a == pytest.approx(5.0)

    tailed = wake.settle_tail(1e-6)
    assert tailed.duration_s == pytest.approx(2e-6)
    assert tailed.final_current_a == wake.final_current_a

    repeated = wake.repeated(3, period_s=2e-6)
    assert repeated.duration_s == pytest.approx(5e-6)
    assert repeated.current_a(2.5e-6) == pytest.approx(10.0)
    assert repeated.name == "wakex3"


def test_trace_builder_round_trip():
    trace = (
        TraceBuilder(initial_current_a=2.0)
        .hold(100e-9)
        .ramp_to(25.0, 5e-9)
        .hold(500e-9)
        .step_to(2.0)
        .hold(400e-9)
        .build("pulse")
    )
    assert trace.name == "pulse"
    assert trace.initial_current_a == 2.0
    assert trace.current_a(300e-9) == pytest.approx(25.0)
    assert trace.final_current_a == 2.0


def test_load_trace_is_hashable_and_picklable():
    import pickle

    trace = core_wake_trace()
    assert hash(trace) == hash(core_wake_trace())
    assert pickle.loads(pickle.dumps(trace)) == trace
    scenario = TransientScenario.from_trace(trace)
    assert pickle.loads(pickle.dumps(scenario)) == scenario


# -- TransientScenario ----------------------------------------------------------------------------


def test_paper_transient_scenarios_cover_the_four_events():
    scenarios = paper_transient_scenarios()
    assert len(scenarios) == 4
    names = {scenario.name for scenario in scenarios}
    assert names == {"core_wake", "avx_burst", "staggered_wake", "wake_then_avx"}
    for scenario in scenarios:
        assert scenario.kind == "transient"
        assert scenario.resolved_duration_s > 0


def test_scenario_name_records_non_default_time_step():
    scenario = TransientScenario.from_trace(core_wake_trace(), time_step_s=1e-9)
    assert scenario.name == "core_wake@1ns"
    default = TransientScenario.from_trace(core_wake_trace())
    assert default.name == "core_wake"


def test_scenario_validation():
    trace = core_wake_trace()
    with pytest.raises(ConfigurationError):
        TransientScenario(name="", trace=trace)
    with pytest.raises(ConfigurationError):
        TransientScenario(name="x", trace=trace, time_step_s=0.0)
    with pytest.raises(ConfigurationError):
        TransientScenario(name="x", trace=trace, duration_s=-1.0)


def test_exact_after_scan_shares_no_stale_eigenbasis(gated_simulator):
    # Regression: the eigenbasis cache was keyed by time step only, so an
    # "exact" run after a "scan" run at the same step reused the RK4
    # propagator's decomposition and produced garbage.
    step = 2e-9
    scan = gated_simulator.simulate_current_step(
        25.0, duration_s=2e-6, time_step_s=step, method="scan"
    )
    exact = gated_simulator.simulate_current_step(
        25.0, duration_s=2e-6, time_step_s=step, method="exact"
    )
    fresh = DroopSimulator(gated_simulator.stages, 1.0).simulate_current_step(
        25.0, duration_s=2e-6, time_step_s=step, method="exact"
    )
    assert np.abs(exact.load_voltage_v - fresh.load_voltage_v).max() < 1e-12
    assert np.abs(exact.load_voltage_v - scan.load_voltage_v).max() < 1e-4


def test_repeated_holds_final_current_between_copies():
    trace = core_wake_trace(duration_s=1e-6)
    repeated = trace.repeated(2, period_s=2e-6)
    # Mid-gap the load must sit at the settled active current, not ramp
    # toward the next copy's idle level.
    assert repeated.current_a(1.5e-6) == pytest.approx(trace.final_current_a)
    # And the second wake replays the event's idle level just before it.
    assert repeated.current_a(2.0e-6 + 50e-9) == pytest.approx(
        trace.initial_current_a
    )
