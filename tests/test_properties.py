"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.grid import FrequencyGrid
from repro.common.units import MHZ
from repro.pdn.elements import Capacitor, Inductor, Resistor
from repro.pdn.loadline import LoadLine
from repro.pdn.transients import LoadTrace
from repro.pmu.dvfs import CpuDemand
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel
from repro.power.thermal import ThermalLimits, ThermalModel
from repro.soc.die import SiliconVfCharacter
from repro.workloads.descriptors import CpuWorkload

_frequencies = st.floats(min_value=1e8, max_value=6e9)
_voltages = st.floats(min_value=0.4, max_value=1.5)
_currents = st.floats(min_value=0.0, max_value=200.0)


# -- frequency grid invariants ---------------------------------------------------------------------


@given(
    frequency=st.floats(min_value=1e8, max_value=6e9),
    step_mhz=st.sampled_from([50.0, 100.0, 133.0]),
)
def test_grid_floor_is_at_most_input_and_on_grid(frequency, step_mhz):
    grid = FrequencyGrid(min_hz=800 * MHZ, max_hz=4.5e9, step_hz=step_mhz * MHZ)
    floored = grid.floor(frequency)
    assert grid.min_hz <= floored <= grid.max_hz
    assert grid.contains(floored)
    if grid.min_hz <= frequency <= grid.max_hz:
        assert floored <= frequency + 1e-6


@given(frequency=_frequencies)
def test_grid_ceil_not_below_floor(frequency):
    grid = FrequencyGrid(min_hz=800 * MHZ, max_hz=4.5e9, step_hz=100 * MHZ)
    assert grid.ceil(frequency) >= grid.floor(frequency) - 1e-6


# -- circuit element invariants ----------------------------------------------------------------------


@given(
    resistance=st.floats(min_value=1e-4, max_value=10.0),
    omega=st.floats(min_value=1e3, max_value=1e10),
)
def test_resistor_admittance_real_and_positive(resistance, omega):
    admittance = Resistor(resistance).admittance(omega)
    assert admittance.imag == 0.0
    assert admittance.real > 0.0


@given(
    inductance=st.floats(min_value=1e-12, max_value=1e-6),
    dcr=st.floats(min_value=0.0, max_value=1e-2),
    omega=st.floats(min_value=1e3, max_value=1e10),
)
def test_inductor_impedance_magnitude_grows_with_frequency(inductance, dcr, omega):
    inductor = Inductor(inductance, dcr)
    z_low = 1.0 / inductor.admittance(omega)
    z_high = 1.0 / inductor.admittance(omega * 10)
    assert abs(z_high) >= abs(z_low) - 1e-12


@given(
    capacitance=st.floats(min_value=1e-9, max_value=1e-3),
    esr=st.floats(min_value=0.0, max_value=0.1),
    omega=st.floats(min_value=1e3, max_value=1e9),
)
def test_capacitor_impedance_never_below_esr(capacitance, esr, omega):
    capacitor = Capacitor(capacitance, esr_ohm=esr)
    impedance = 1.0 / capacitor.admittance(omega)
    assert abs(impedance) >= esr - 1e-12


# -- load-line invariants --------------------------------------------------------------------------------


@given(
    resistance_mohm=st.floats(min_value=0.5, max_value=3.0),
    setpoint=_voltages,
    current=_currents,
)
def test_loadline_voltage_never_exceeds_setpoint(resistance_mohm, setpoint, current):
    loadline = LoadLine(resistance_ohm=resistance_mohm * 1e-3)
    assert loadline.load_voltage(setpoint, current) <= setpoint + 1e-12


@given(
    resistance_mohm=st.floats(min_value=0.5, max_value=3.0),
    load_voltage=_voltages,
    current=_currents,
)
def test_loadline_setpoint_round_trip(resistance_mohm, load_voltage, current):
    loadline = LoadLine(resistance_ohm=resistance_mohm * 1e-3)
    setpoint = loadline.setpoint_for_load_voltage(load_voltage, current)
    assert loadline.load_voltage(setpoint, current) == pytest.approx(load_voltage)


# -- power model invariants --------------------------------------------------------------------------------


@given(voltage=_voltages, frequency=_frequencies, activity=st.floats(min_value=0.0, max_value=1.0))
def test_dynamic_power_non_negative_and_monotone_in_activity(voltage, frequency, activity):
    model = DynamicPowerModel(cdyn_max_f=4.5e-9)
    power = model.power_w(voltage, frequency, activity)
    assert power >= 0.0
    assert power <= model.power_w(voltage, frequency, 1.0) + 1e-12


@given(voltage=_voltages, temperature=st.floats(min_value=20.0, max_value=105.0))
def test_leakage_monotone_in_voltage_and_temperature(voltage, temperature):
    model = LeakagePowerModel(reference_power_w=0.3)
    base = model.power_w(voltage, temperature)
    assert base >= 0.0
    assert model.power_w(voltage + 0.05, temperature) >= base
    assert model.power_w(voltage, temperature + 5.0) >= base


@given(tdp=st.floats(min_value=10.0, max_value=150.0), power=st.floats(min_value=0.0, max_value=150.0))
def test_thermal_model_safe_iff_power_below_tdp(tdp, power):
    model = ThermalModel(ThermalLimits(tdp_w=tdp))
    assert model.is_thermally_safe(power) == (power <= tdp + 1e-9)


# -- V/F character invariants ---------------------------------------------------------------------------------


@given(frequency=_frequencies)
def test_vf_character_round_trip_property(frequency):
    silicon = SiliconVfCharacter()
    voltage = silicon.nominal_voltage_v(frequency)
    recovered = silicon.max_frequency_for_voltage(voltage)
    assert recovered == pytest.approx(frequency, rel=1e-6)


@given(f_low=_frequencies, f_high=_frequencies)
def test_vf_character_monotone_property(f_low, f_high):
    silicon = SiliconVfCharacter()
    low, high = sorted((f_low, f_high))
    assert silicon.nominal_voltage_v(high) >= silicon.nominal_voltage_v(low)


# -- workload performance model invariants ---------------------------------------------------------------------


@given(
    scalability=st.floats(min_value=0.0, max_value=1.0),
    f_low=st.floats(min_value=1e9, max_value=4.5e9),
    f_high=st.floats(min_value=1e9, max_value=4.5e9),
)
def test_workload_speedup_bounded_by_frequency_ratio(scalability, f_low, f_high):
    workload = CpuWorkload(
        name="prop",
        active_cores=1,
        activity=0.6,
        memory_intensity=0.3,
        frequency_scalability=scalability,
    )
    low, high = sorted((f_low, f_high))
    speedup = workload.speedup(low, high)
    assert 1.0 - 1e-9 <= speedup <= high / low + 1e-9


@given(scalability=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=30)
def test_workload_performance_is_finite_and_positive(scalability):
    workload = CpuWorkload(
        name="prop",
        active_cores=1,
        activity=0.6,
        memory_intensity=0.3,
        frequency_scalability=scalability,
    )
    for frequency in (0.8e9, 2.0e9, 4.2e9):
        value = workload.relative_performance(frequency)
        assert math.isfinite(value)
        assert value > 0.0


# -- load-trace composition algebra -----------------------------------------------------------------


@st.composite
def load_traces(draw, name: str = "prop"):
    count = draw(st.integers(min_value=2, max_value=6))
    deltas = draw(
        st.lists(
            st.floats(min_value=1e-9, max_value=1e-6),
            min_size=count - 1,
            max_size=count - 1,
        )
    )
    currents = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=count, max_size=count
        )
    )
    times = [0.0]
    for delta in deltas:
        times.append(times[-1] + delta)
    return LoadTrace(name=name, times_s=tuple(times), currents_a=tuple(currents))


@given(a=load_traces(), b=load_traces())
@settings(max_examples=50)
def test_trace_then_concatenates_durations(a, b):
    combined = a.then(b)
    assert combined.duration_s == pytest.approx(a.duration_s + b.duration_s)
    assert combined.initial_current_a == a.initial_current_a
    assert combined.final_current_a == b.final_current_a


@given(a=load_traces(name="a"), b=load_traces(name="b"))
@settings(max_examples=50)
def test_trace_overlay_is_commutative(a, b):
    ab = a.overlay(b)
    ba = b.overlay(a)
    assert ab.times_s == ba.times_s
    assert ab.currents_a == ba.currents_a


@given(a=load_traces(), delay=st.floats(min_value=1e-9, max_value=1e-6))
@settings(max_examples=50)
def test_trace_shift_preserves_waveform(a, delay):
    shifted = a.shifted(delay)
    assert shifted.duration_s == pytest.approx(a.duration_s + delay)
    for time, current in zip(a.times_s, a.currents_a):
        assert shifted.current_a(time + delay) == pytest.approx(current)
    # The lead-in holds the initial current.
    assert shifted.current_a(0.0) == pytest.approx(a.initial_current_a)


@given(a=load_traces(), factor=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=50)
def test_trace_scaling_identities(a, factor):
    scaled = a.scaled(factor)
    assert scaled.times_s == a.times_s
    assert scaled.peak_current_a == pytest.approx(factor * a.peak_current_a)
    assert a.scaled(1.0) == a


@given(a=load_traces())
@settings(max_examples=50)
def test_trace_repeated_once_is_identity(a):
    repeated = a.repeated(1)
    assert repeated.times_s == a.times_s
    assert repeated.currents_a == a.currents_a


@given(a=load_traces(), b=load_traces())
@settings(max_examples=50)
def test_trace_hashability_consistent_with_equality(a, b):
    clone = LoadTrace(name=a.name, times_s=a.times_s, currents_a=a.currents_a)
    assert clone == a
    assert hash(clone) == hash(a)
    if a == b:
        assert hash(a) == hash(b)


# -- DVFS monotonicity ------------------------------------------------------------------------------
#
# The policies come from the shared session factories in conftest.py, so
# hypothesis re-runs resolve against cached systems.

_TDP_LEVELS = (25.0, 35.0, 45.0, 65.0, 80.0, 91.0)


@given(
    tdp=st.sampled_from(_TDP_LEVELS),
    activity=st.sampled_from((0.45, 0.62, 0.8)),
    bypassed=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_dvfs_frequency_non_increasing_in_active_cores(
    dvfs_policy, tdp, activity, bypassed
):
    policy = dvfs_policy(tdp, bypassed)
    frequencies = [
        policy.resolve(
            CpuDemand(active_cores=cores, activity=activity)
        ).frequency_hz
        for cores in (1, 2, 3, 4)
    ]
    assert all(b <= a + 1e-6 for a, b in zip(frequencies, frequencies[1:]))


@given(
    cores=st.integers(min_value=1, max_value=4),
    activity=st.sampled_from((0.45, 0.62, 0.8)),
    bypassed=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_dvfs_frequency_non_decreasing_in_tdp(dvfs_policy, cores, activity, bypassed):
    demand = CpuDemand(active_cores=cores, activity=activity)
    frequencies = [
        dvfs_policy(tdp, bypassed).resolve(demand).frequency_hz
        for tdp in _TDP_LEVELS
    ]
    assert all(b >= a - 1e-6 for a, b in zip(frequencies, frequencies[1:]))
