"""Unit tests for the PMU firmware substrate: V/F curves, DVFS, turbo, fuses."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.pdn.guardband import GuardbandModel
from repro.pdn.loadline import default_virus_table
from repro.pmu.dvfs import CpuDemand, DvfsPolicy, LimitingFactor
from repro.pmu.fuses import FuseSet, PowerDeliveryMode, firmware_area_overhead_fraction
from repro.pmu.turbo import TurboTable
from repro.pmu.vf_curve import VfCurve
from repro.soc.skus import skylake_h_mobile, skylake_s_desktop


def _vf_curve(bypassed: bool) -> VfCurve:
    processor = skylake_s_desktop() if bypassed else skylake_h_mobile()
    return VfCurve(
        silicon=processor.die.vf_character,
        guardband_model=GuardbandModel(processor.package.pdn),
        virus_table=default_virus_table(processor.core_count),
        frequency_grid=processor.die.core_frequency_grid,
        vmax_v=processor.die.vmax_v,
    )


# -- fuses -------------------------------------------------------------------------------------


def test_darkgates_desktop_fuses():
    fuses = FuseSet.darkgates_desktop()
    assert fuses.bypass_enabled
    assert fuses.deepest_package_cstate == "C8"


def test_legacy_desktop_fuses():
    fuses = FuseSet.legacy_desktop()
    assert not fuses.bypass_enabled
    assert fuses.deepest_package_cstate == "C7"


def test_mobile_fuses_support_c10():
    assert FuseSet.mobile().deepest_package_cstate == "C10"


def test_fuses_reject_unknown_cstate():
    with pytest.raises(ConfigurationError):
        FuseSet(power_delivery_mode=PowerDeliveryMode.NORMAL, deepest_package_cstate="C42")


def test_firmware_area_overhead_below_paper_claim():
    # Paper Section 5: 0.3 KB of firmware is below 0.004% of the die area.
    assert firmware_area_overhead_fraction(122.0) < 0.00004 * 1.001


# -- V/F curve ------------------------------------------------------------------------------------


def test_vf_required_voltage_above_nominal():
    curve = _vf_curve(bypassed=False)
    point = curve.point(3.5e9, active_cores=1)
    assert point.required_voltage_v > point.nominal_voltage_v
    assert point.guardband_v > 0


def test_vf_guardband_grows_with_active_cores():
    curve = _vf_curve(bypassed=False)
    assert curve.guardband_v(4) > curve.guardband_v(1)


def test_vf_fmax_decreases_with_active_cores():
    curve = _vf_curve(bypassed=False)
    assert curve.fmax_hz(4) <= curve.fmax_hz(1)


def test_vf_bypassed_fmax_higher_than_gated():
    gated = _vf_curve(bypassed=False)
    bypassed = _vf_curve(bypassed=True)
    assert bypassed.fmax_hz(1) > gated.fmax_hz(1)
    assert bypassed.fmax_hz(4) > gated.fmax_hz(4)


def test_vf_gated_single_core_fmax_near_datasheet():
    # The baseline part's Vmax-limited single-core turbo should land near the
    # i7-6700K's 4.2 GHz datasheet value.
    gated = _vf_curve(bypassed=False)
    assert 3.8e9 <= gated.fmax_hz(1) <= 4.4e9


def test_vf_fmax_is_on_grid():
    curve = _vf_curve(bypassed=True)
    assert curve.frequency_grid.contains(curve.fmax_hz(1))


def test_vf_power_voltage_between_nominal_and_required():
    curve = _vf_curve(bypassed=False)
    frequency = 3.0e9
    nominal = curve.point(frequency, 1).nominal_voltage_v
    required = curve.required_voltage_v(frequency, 1)
    power_voltage = curve.power_voltage_v(frequency, 1)
    assert nominal < power_voltage <= required


def test_vf_headroom_sign():
    curve = _vf_curve(bypassed=False)
    assert curve.headroom_v(1.0e9, 1) > 0
    assert curve.headroom_v(5.0e9, 4) < 0


def test_vf_curve_points_cover_grid():
    curve = _vf_curve(bypassed=True)
    points = curve.curve_points(1)
    assert len(points) == len(curve.frequency_grid)


def test_vf_fmax_collapses_when_guardband_exceeds_vmax():
    curve = _vf_curve(bypassed=False)
    assert curve.fmax_hz(1, vmax_v=0.1) == pytest.approx(curve.frequency_grid.min_hz)


# -- DVFS -----------------------------------------------------------------------------------------


def test_dvfs_demand_validation():
    with pytest.raises(ConfigurationError):
        CpuDemand(active_cores=0)
    with pytest.raises(ConfigurationError):
        CpuDemand(active_cores=1, activity=1.5)


def test_dvfs_rejects_more_cores_than_processor():
    processor = skylake_h_mobile()
    policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
    with pytest.raises(ConfigurationError):
        policy.resolve(CpuDemand(active_cores=8))


def test_dvfs_single_core_at_high_tdp_is_vmax_or_grid_limited():
    processor = skylake_h_mobile(91.0)
    policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
    point = policy.resolve(CpuDemand(active_cores=1, activity=0.65))
    assert point.limiting_factor in (LimitingFactor.VMAX, LimitingFactor.FREQUENCY_GRID)
    assert point.package_power_w < 91.0


def test_dvfs_all_cores_at_low_tdp_is_tdp_limited():
    processor = skylake_h_mobile(35.0)
    policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
    point = policy.resolve(CpuDemand(active_cores=4, activity=0.65))
    assert point.limiting_factor is LimitingFactor.TDP
    assert point.package_power_w <= 35.0 + 1e-6


def test_dvfs_frequency_monotonic_in_tdp():
    frequencies = []
    for tdp in (35.0, 65.0, 91.0):
        processor = skylake_h_mobile(tdp)
        policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
        point = policy.resolve(CpuDemand(active_cores=4, activity=0.65))
        frequencies.append(point.frequency_hz)
    assert frequencies == sorted(frequencies)


def test_dvfs_lighter_workload_runs_at_least_as_fast():
    processor = skylake_h_mobile(45.0)
    policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
    heavy = policy.resolve(CpuDemand(active_cores=4, activity=0.8))
    light = policy.resolve(CpuDemand(active_cores=4, activity=0.45))
    assert light.frequency_hz >= heavy.frequency_hz


def test_dvfs_reported_voltage_respects_vmax():
    processor = skylake_h_mobile(91.0)
    curve = _vf_curve(False)
    policy = DvfsPolicy(processor, curve, bypass_mode=False)
    point = policy.resolve(CpuDemand(active_cores=1, activity=0.65))
    assert point.voltage_v <= curve.vmax_v + 1e-9


def test_dvfs_power_breakdown_sums_to_package_power():
    processor = skylake_s_desktop(65.0)
    policy = DvfsPolicy(processor, _vf_curve(True), bypass_mode=True)
    point = policy.resolve(CpuDemand(active_cores=2, activity=0.6))
    reconstructed = (
        point.cores_power_w + point.idle_cores_power_w + point.uncore_power_w
    )
    assert point.package_power_w == pytest.approx(reconstructed + 0.05, abs=0.01)


def test_dvfs_bypass_mode_has_idle_core_power():
    curve = _vf_curve(True)
    policy = DvfsPolicy(skylake_s_desktop(91.0), curve, bypass_mode=True)
    point = policy.resolve(CpuDemand(active_cores=1, activity=0.65))
    assert point.idle_cores_power_w > 0.1
    gated_policy = DvfsPolicy(skylake_h_mobile(91.0), _vf_curve(False), bypass_mode=False)
    gated_point = gated_policy.resolve(CpuDemand(active_cores=1, activity=0.65))
    assert gated_point.idle_cores_power_w < 0.1


def test_dvfs_package_power_helper_matches_resolution():
    processor = skylake_h_mobile(45.0)
    policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
    demand = CpuDemand(active_cores=4, activity=0.65)
    point = policy.resolve(demand)
    assert policy.package_power_w(point.frequency_hz, demand) == pytest.approx(
        point.package_power_w, rel=1e-6
    )


def test_dvfs_junction_temperature_below_tjmax():
    processor = skylake_h_mobile(35.0)
    policy = DvfsPolicy(processor, _vf_curve(False), bypass_mode=False)
    point = policy.resolve(CpuDemand(active_cores=4, activity=0.8))
    assert point.junction_temperature_c <= processor.tjmax_c + 1e-6


# -- turbo table ------------------------------------------------------------------------------------


def test_turbo_table_from_vf_curve_monotonic():
    curve = _vf_curve(False)
    table = TurboTable.from_vf_curve(curve, core_count=4)
    rows = table.rows()
    frequencies = [f for _, f in rows]
    assert frequencies == sorted(frequencies, reverse=True)
    assert table.single_core_turbo_hz() >= table.all_core_turbo_hz()


def test_turbo_table_lookup_beyond_core_count_uses_last_entry():
    table = TurboTable({1: 4.2e9, 2: 4.0e9, 4: 3.8e9})
    assert table.max_frequency_hz(3) == pytest.approx(3.8e9)
    assert table.max_frequency_hz(6) == pytest.approx(3.8e9)


def test_turbo_table_rejects_increasing_frequency():
    with pytest.raises(ConfigurationError):
        TurboTable({1: 3.0e9, 2: 3.5e9})


def test_turbo_table_rejects_empty():
    with pytest.raises(ConfigurationError):
        TurboTable({})


def test_turbo_table_rejects_bad_lookup():
    table = TurboTable({1: 4.0e9})
    with pytest.raises(ConfigurationError):
        table.max_frequency_hz(0)
