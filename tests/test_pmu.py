"""Unit tests for the PMU firmware substrate: V/F curves, DVFS, turbo, fuses.

System objects (processors, V/F curves, DVFS policies) come from the shared
factory fixtures in ``conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.pmu.dvfs import CpuDemand, LimitingFactor
from repro.pmu.fuses import FuseSet, PowerDeliveryMode, firmware_area_overhead_fraction
from repro.pmu.turbo import TurboTable


# -- fuses -------------------------------------------------------------------------------------


def test_darkgates_desktop_fuses():
    fuses = FuseSet.darkgates_desktop()
    assert fuses.bypass_enabled
    assert fuses.deepest_package_cstate == "C8"


def test_legacy_desktop_fuses():
    fuses = FuseSet.legacy_desktop()
    assert not fuses.bypass_enabled
    assert fuses.deepest_package_cstate == "C7"


def test_mobile_fuses_support_c10():
    assert FuseSet.mobile().deepest_package_cstate == "C10"


def test_fuses_reject_unknown_cstate():
    with pytest.raises(ConfigurationError):
        FuseSet(power_delivery_mode=PowerDeliveryMode.NORMAL, deepest_package_cstate="C42")


def test_firmware_area_overhead_below_paper_claim():
    # Paper Section 5: 0.3 KB of firmware is below 0.004% of the die area.
    assert firmware_area_overhead_fraction(122.0) < 0.00004 * 1.001


# -- V/F curve ------------------------------------------------------------------------------------


def test_vf_required_voltage_above_nominal(vf_curve):
    curve = vf_curve(False)
    point = curve.point(3.5e9, active_cores=1)
    assert point.required_voltage_v > point.nominal_voltage_v
    assert point.guardband_v > 0


def test_vf_guardband_grows_with_active_cores(vf_curve):
    curve = vf_curve(False)
    assert curve.guardband_v(4) > curve.guardband_v(1)


def test_vf_fmax_decreases_with_active_cores(vf_curve):
    curve = vf_curve(False)
    assert curve.fmax_hz(4) <= curve.fmax_hz(1)


def test_vf_bypassed_fmax_higher_than_gated(vf_curve):
    gated = vf_curve(False)
    bypassed = vf_curve(True)
    assert bypassed.fmax_hz(1) > gated.fmax_hz(1)
    assert bypassed.fmax_hz(4) > gated.fmax_hz(4)


def test_vf_gated_single_core_fmax_near_datasheet(vf_curve):
    # The baseline part's Vmax-limited single-core turbo should land near the
    # i7-6700K's 4.2 GHz datasheet value.
    gated = vf_curve(False)
    assert 3.8e9 <= gated.fmax_hz(1) <= 4.4e9


def test_vf_fmax_is_on_grid(vf_curve):
    curve = vf_curve(True)
    assert curve.frequency_grid.contains(curve.fmax_hz(1))


def test_vf_power_voltage_between_nominal_and_required(vf_curve):
    curve = vf_curve(False)
    frequency = 3.0e9
    nominal = curve.point(frequency, 1).nominal_voltage_v
    required = curve.required_voltage_v(frequency, 1)
    power_voltage = curve.power_voltage_v(frequency, 1)
    assert nominal < power_voltage <= required


def test_vf_headroom_sign(vf_curve):
    curve = vf_curve(False)
    assert curve.headroom_v(1.0e9, 1) > 0
    assert curve.headroom_v(5.0e9, 4) < 0


def test_vf_curve_points_cover_grid(vf_curve):
    curve = vf_curve(True)
    points = curve.curve_points(1)
    assert len(points) == len(curve.frequency_grid)


def test_vf_fmax_collapses_when_guardband_exceeds_vmax(vf_curve):
    curve = vf_curve(False)
    assert curve.fmax_hz(1, vmax_v=0.1) == pytest.approx(curve.frequency_grid.min_hz)


# -- DVFS -----------------------------------------------------------------------------------------


def test_dvfs_demand_validation():
    with pytest.raises(ConfigurationError):
        CpuDemand(active_cores=0)
    with pytest.raises(ConfigurationError):
        CpuDemand(active_cores=1, activity=1.5)


def test_dvfs_rejects_more_cores_than_processor(dvfs_policy):
    with pytest.raises(ConfigurationError):
        dvfs_policy(91.0, False).resolve(CpuDemand(active_cores=8))


def test_dvfs_single_core_at_high_tdp_is_vmax_or_grid_limited(dvfs_policy):
    point = dvfs_policy(91.0, False).resolve(CpuDemand(active_cores=1, activity=0.65))
    assert point.limiting_factor in (LimitingFactor.VMAX, LimitingFactor.FREQUENCY_GRID)
    assert point.package_power_w < 91.0


def test_dvfs_all_cores_at_low_tdp_is_tdp_limited(dvfs_policy):
    point = dvfs_policy(35.0, False).resolve(CpuDemand(active_cores=4, activity=0.65))
    assert point.limiting_factor is LimitingFactor.TDP
    assert point.package_power_w <= 35.0 + 1e-6


def test_dvfs_frequency_monotonic_in_tdp(dvfs_policy):
    frequencies = [
        dvfs_policy(tdp, False)
        .resolve(CpuDemand(active_cores=4, activity=0.65))
        .frequency_hz
        for tdp in (35.0, 65.0, 91.0)
    ]
    assert frequencies == sorted(frequencies)


def test_dvfs_lighter_workload_runs_at_least_as_fast(dvfs_policy):
    policy = dvfs_policy(45.0, False)
    heavy = policy.resolve(CpuDemand(active_cores=4, activity=0.8))
    light = policy.resolve(CpuDemand(active_cores=4, activity=0.45))
    assert light.frequency_hz >= heavy.frequency_hz


def test_dvfs_reported_voltage_respects_vmax(dvfs_policy, vf_curve):
    point = dvfs_policy(91.0, False).resolve(CpuDemand(active_cores=1, activity=0.65))
    assert point.voltage_v <= vf_curve(False).vmax_v + 1e-9


def test_dvfs_power_breakdown_sums_to_package_power(dvfs_policy):
    point = dvfs_policy(65.0, True).resolve(CpuDemand(active_cores=2, activity=0.6))
    reconstructed = (
        point.cores_power_w + point.idle_cores_power_w + point.uncore_power_w
    )
    assert point.package_power_w == pytest.approx(reconstructed + 0.05, abs=0.01)


def test_dvfs_bypass_mode_has_idle_core_power(dvfs_policy):
    point = dvfs_policy(91.0, True).resolve(CpuDemand(active_cores=1, activity=0.65))
    assert point.idle_cores_power_w > 0.1
    gated_point = dvfs_policy(91.0, False).resolve(
        CpuDemand(active_cores=1, activity=0.65)
    )
    assert gated_point.idle_cores_power_w < 0.1


def test_dvfs_package_power_helper_matches_resolution(dvfs_policy):
    policy = dvfs_policy(45.0, False)
    demand = CpuDemand(active_cores=4, activity=0.65)
    point = policy.resolve(demand)
    assert policy.package_power_w(point.frequency_hz, demand) == pytest.approx(
        point.package_power_w, rel=1e-6
    )


def test_dvfs_junction_temperature_below_tjmax(dvfs_policy, mobile_processor):
    point = dvfs_policy(35.0, False).resolve(CpuDemand(active_cores=4, activity=0.8))
    assert point.junction_temperature_c <= mobile_processor(35.0).tjmax_c + 1e-6


# -- candidate tables (closed-loop resolution) ----------------------------------------------------


def test_candidate_table_matches_static_power_arithmetic(dvfs_policy):
    policy = dvfs_policy(45.0, False)
    demand = CpuDemand(active_cores=4, activity=0.65)
    point = policy.resolve(demand)
    at_static = policy.resolve_at(
        demand,
        temperature_c=point.junction_temperature_c,
        power_limit_w=45.0,
    )
    assert at_static.frequency_hz == pytest.approx(point.frequency_hz, abs=1e-3)
    # The static resolver reports the power of its penultimate thermal
    # iterate, so the pinned-temperature power agrees only to the fixed
    # point's convergence tolerance.
    assert at_static.package_power_w == pytest.approx(point.package_power_w, rel=1e-3)


def test_candidate_table_power_grows_with_temperature(dvfs_policy):
    table = dvfs_policy(45.0, True).candidate_table(CpuDemand(active_cores=2))
    cool = table.package_power_w(50.0)
    hot = table.package_power_w(90.0)
    assert (hot > cool).all()


def test_resolve_at_frequency_monotonic_in_power_limit(dvfs_policy):
    policy = dvfs_policy(35.0, False)
    demand = CpuDemand(active_cores=4, activity=0.65)
    frequencies = [
        policy.resolve_at(demand, temperature_c=60.0, power_limit_w=limit).frequency_hz
        for limit in (15.0, 25.0, 35.0, 60.0)
    ]
    assert frequencies == sorted(frequencies)


def test_resolve_at_rejects_oversized_demand(dvfs_policy):
    with pytest.raises(ConfigurationError):
        dvfs_policy(91.0, False).candidate_table(CpuDemand(active_cores=8))


# -- turbo table ------------------------------------------------------------------------------------


def test_turbo_table_from_vf_curve_monotonic(vf_curve):
    table = TurboTable.from_vf_curve(vf_curve(False), core_count=4)
    rows = table.rows()
    frequencies = [f for _, f in rows]
    assert frequencies == sorted(frequencies, reverse=True)
    assert table.single_core_turbo_hz() >= table.all_core_turbo_hz()


def test_turbo_table_lookup_beyond_core_count_uses_last_entry():
    table = TurboTable({1: 4.2e9, 2: 4.0e9, 4: 3.8e9})
    assert table.max_frequency_hz(3) == pytest.approx(3.8e9)
    assert table.max_frequency_hz(6) == pytest.approx(3.8e9)


def test_turbo_table_rejects_increasing_frequency():
    with pytest.raises(ConfigurationError):
        TurboTable({1: 3.0e9, 2: 3.5e9})


def test_turbo_table_rejects_empty():
    with pytest.raises(ConfigurationError):
        TurboTable({})


def test_turbo_table_rejects_bad_lookup():
    table = TurboTable({1: 4.0e9})
    with pytest.raises(ConfigurationError):
        table.max_frequency_hz(0)
