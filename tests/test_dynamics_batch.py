"""Batched-vs-reference equivalence of the closed-loop dynamics engine.

The batched lockstep fast path (:class:`BatchedDynamicsSimulator`) must be
bit-compatible with the retained per-run stepper: identical frequency-bin,
limiting-factor and package C-state traces, and float traces within tight
tolerance (in practice bit-identical, which the strictest tests assert via
full dataclass equality).  The suite covers the deterministic acceptance
grids, heterogeneous batches, the engine/Study wiring, the stacked
candidate-table resolution, and a hypothesis sweep over random scenarios.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.study import BatchedExecutor, Study, resolve_executor
from repro.common.errors import ConfigurationError
from repro.core.spec import build_engine, get_spec
from repro.pmu.dvfs import (
    LIMITING_FACTOR_CODES,
    LIMITING_FACTOR_ORDER,
    CpuDemand,
    LimitingFactor,
    StackedCandidateTables,
)
from repro.sim.dynamics import BatchedDynamicsSimulator, DynamicsSimulator
from repro.workloads.dynamics import (
    DynamicPhase,
    DynamicScenario,
    burst_scenario,
    sprint_and_rest_scenario,
    sustained_scenario,
)
from repro.workloads.spec import spec_cpu2006_base_suite

SCENARIOS = (
    sustained_scenario(duration_s=12.0, time_step_s=0.1),
    burst_scenario(
        idle_lead_s=3.0,
        burst_s=12.0,
        thermal_capacitance_j_per_c=5.0,
        time_step_s=0.1,
    ),
    sprint_and_rest_scenario(
        sprint_s=4.0, rest_s=2.0, cycles=2, active_cores=2, time_step_s=0.1
    ),
)


def _assert_equivalent(reference, batched):
    # The headline guarantees first (clearer failures)...
    assert reference.frequencies_hz == batched.frequencies_hz
    assert reference.package_cstates == batched.package_cstates
    assert reference.limiting_factors == batched.limiting_factors
    for attribute in ("package_powers_w", "temperatures_c", "average_powers_w"):
        assert np.allclose(
            getattr(reference, attribute),
            getattr(batched, attribute),
            rtol=1e-12,
            atol=1e-12,
        )
    # ... then the full bit-for-bit contract.
    assert reference == batched


def test_batched_matches_reference_on_tdp_sweep(darkgates_pcode, baseline_pcode):
    pairs = [
        (pcode, scenario)
        for pcode in (
            darkgates_pcode(35.0),
            darkgates_pcode(91.0),
            baseline_pcode(35.0),
            baseline_pcode(91.0),
        )
        for scenario in SCENARIOS
    ]
    simulator = BatchedDynamicsSimulator()
    batched = simulator.run_batch(pairs)
    for (pcode, scenario), result in zip(pairs, batched):
        _assert_equivalent(simulator.simulator(pcode).run(scenario), result)


def test_batched_handles_heterogeneous_runs(darkgates_pcode, baseline_pcode):
    """Different time steps, durations, pinned C-states and initial state."""
    scenarios = (
        sustained_scenario(
            duration_s=5.0,
            time_step_s=0.05,
            initial_temperature_c=80.0,
            initial_average_power_w=60.0,
        ),
        DynamicScenario(
            name="pinned_idle",
            phases=(
                DynamicPhase(name="gap", duration_s=2.0, package_cstate="c6"),
                DynamicPhase(name="work", duration_s=3.0, active_cores=1),
                DynamicPhase(name="deep", duration_s=4.0, package_cstate="deepest"),
            ),
            time_step_s=0.25,
        ),
        burst_scenario(idle_lead_s=1.0, burst_s=3.0, time_step_s=0.02),
    )
    pairs = [
        (pcode, scenario)
        for pcode in (darkgates_pcode(45.0), baseline_pcode(65.0))
        for scenario in scenarios
    ]
    simulator = BatchedDynamicsSimulator()
    batched = simulator.run_batch(pairs)
    for (pcode, scenario), result in zip(pairs, batched):
        _assert_equivalent(simulator.simulator(pcode).run(scenario), result)


def test_batched_all_idle_batch(baseline_pcode):
    scenario = DynamicScenario(
        name="all_idle",
        phases=(DynamicPhase(name="gap", duration_s=3.0),),
        time_step_s=0.1,
    )
    simulator = BatchedDynamicsSimulator()
    (batched,) = simulator.run_batch([(baseline_pcode(35.0), scenario)])
    _assert_equivalent(simulator.simulator(baseline_pcode(35.0)).run(scenario), batched)
    assert set(batched.frequencies_hz) == {0.0}


def test_empty_batch_returns_empty_list():
    assert BatchedDynamicsSimulator().run_batch([]) == []


# -- engine wiring ---------------------------------------------------------------------


def test_engine_dispatches_to_batched_by_default():
    engine = build_engine(get_spec("baseline").variant(tdp_w=35.0))
    scenario = SCENARIOS[1]
    default = engine.run(scenario)
    reference = engine.run_dynamic_scenario(scenario, method="reference")
    _assert_equivalent(reference, default)


def test_engine_rejects_unknown_dynamics_method():
    engine = build_engine(get_spec("baseline").variant(tdp_w=35.0))
    with pytest.raises(ConfigurationError, match="unknown dynamics method"):
        engine.run_dynamic_scenario(SCENARIOS[0], method="vectorised")


# -- Study wiring ----------------------------------------------------------------------


def test_over_dynamics_defaults_to_batched_executor():
    study = Study.over_dynamics(("baseline",), SCENARIOS[:1], tdp_levels_w=(35.0,))
    assert isinstance(study._executor, BatchedExecutor)
    explicit = Study.over_dynamics(
        ("baseline",), SCENARIOS[:1], tdp_levels_w=(35.0,), executor="serial"
    )
    assert not isinstance(explicit._executor, BatchedExecutor)


def test_batched_executor_name_resolves():
    assert isinstance(resolve_executor("batched"), BatchedExecutor)


def test_over_dynamics_batched_equals_serial():
    scenarios = SCENARIOS[:2]
    kwargs = dict(tdp_levels_w=(35.0, 91.0), name="sweep")
    batched = Study.over_dynamics(
        ("darkgates", "baseline"), scenarios, **kwargs
    ).run()
    serial = Study.over_dynamics(
        ("darkgates", "baseline"), scenarios, executor="serial", **kwargs
    ).run()
    assert len(batched.cells) == len(serial.cells)
    for cell_b, cell_s in zip(batched.cells, serial.cells):
        assert cell_b.spec == cell_s.spec
        assert cell_b.workload_name == cell_s.workload_name
        _assert_equivalent(cell_s.value, cell_b.value)


def test_batched_executor_falls_back_for_non_dynamic_tasks():
    workloads = spec_cpu2006_base_suite()[:2]
    suites = {"cpu": workloads, "dynamics": list(SCENARIOS[:1])}
    batched = Study(("baseline",), suites, executor="batched", name="mixed").run()
    serial = Study(("baseline",), suites, executor="serial", name="mixed").run()
    for workload in workloads:
        assert batched.get("baseline", workload, suite="cpu") == serial.get(
            "baseline", workload, suite="cpu"
        )
    assert batched.get(
        "baseline", SCENARIOS[0].name, suite="dynamics"
    ) == serial.get("baseline", SCENARIOS[0].name, suite="dynamics")


# -- stacked candidate tables ----------------------------------------------------------


def test_stacked_tables_match_scalar_select(dvfs_policy):
    policies = (dvfs_policy(35.0, True), dvfs_policy(91.0, False))
    demands = (CpuDemand(active_cores=1), CpuDemand(active_cores=4, activity=0.8))
    tables = [
        policy.candidate_table(demand) for policy in policies for demand in demands
    ]
    stacked = StackedCandidateTables.from_tables(tables)
    assert len(stacked) == len(tables)
    temperatures = (40.0, 75.0, 99.0)
    limits = (5.0, 20.0, 45.0, 200.0)
    for row, table in enumerate(tables):
        for temperature in temperatures:
            expected_power = table.package_power_w(temperature)
            rows = np.array([row])
            power = stacked.package_power_w(rows, np.array([temperature]))
            assert np.array_equal(power[0, : len(expected_power)], expected_power)
            for limit in limits:
                index, limiting = table.select(limit, temperature)
                indices, codes = stacked.select(
                    rows, np.array([limit]), np.array([temperature])
                )
                assert int(indices[0]) == index
                assert LIMITING_FACTOR_ORDER[int(codes[0])] is limiting


def test_stacked_tables_multi_group_association_matches_scalar():
    """>=2 leakage groups must sum group-first, like the scalar path.

    The evaluated SKUs use one leakage law per die, so only a synthetic
    table exercises the multi-group accumulation order; a group-by-group
    association mismatch shows up as a one-ulp power difference here.
    """
    from repro.pmu.dvfs import CandidateTable

    table = CandidateTable(
        frequencies_hz=np.array([1e9, 2e9, 3e9]),
        vr_voltages_v=np.array([0.7, 0.8, 0.95]),
        power_voltages_v=np.array([0.68, 0.78, 0.9]),
        active_dynamic_w=np.array([1.1, 2.3, 4.7]),
        active_leakage_groups=(
            (0.02, 60.0, 1.8, np.array([0.1, 0.2, 0.3])),
            (0.031, 55.0, 2.1, np.array([0.05, 0.06, 0.07])),
            (0.027, 65.0, 1.8, np.array([0.01, 0.03, 0.09])),
        ),
        idle_leakage_groups=(
            (0.02, 60.0, 1.8, np.array([0.01, 0.02, 0.03])),
            (0.031, 55.0, 2.1, np.array([0.002, 0.004, 0.008])),
        ),
        uncore_power_w=1.5,
        graphics_idle_power_w=0.05,
        vmax_ok=np.array([True, True, False]),
        iccmax_ok=np.array([True, True, True]),
        vmax_v=1.0,
    )
    stacked = StackedCandidateTables.from_tables([table])
    rows = np.array([0])
    for temperature in (40.0, 61.3, 99.0):
        expected = table.package_power_w(temperature)
        power = stacked.package_power_w(rows, np.array([temperature]))
        assert np.array_equal(power[0], expected)
        for limit in (2.0, 5.0, 50.0):
            index, limiting = table.select(limit, temperature)
            indices, codes = stacked.select(
                rows, np.array([limit]), np.array([temperature])
            )
            assert int(indices[0]) == index
            assert LIMITING_FACTOR_ORDER[int(codes[0])] is limiting


def test_stacked_tables_reject_empty():
    with pytest.raises(ConfigurationError):
        StackedCandidateTables.from_tables([])


def test_limiting_factor_codes_round_trip():
    assert len(LIMITING_FACTOR_ORDER) == len(LimitingFactor)
    for factor in LimitingFactor:
        assert LIMITING_FACTOR_ORDER[LIMITING_FACTOR_CODES[factor]] is factor
    # The batched stepper relies on the power-limited factors sitting at the
    # top of the code space.
    tdp_code = LIMITING_FACTOR_CODES[LimitingFactor.TDP]
    thermal_code = LIMITING_FACTOR_CODES[LimitingFactor.THERMAL]
    assert {tdp_code, thermal_code} == {
        len(LIMITING_FACTOR_ORDER) - 2,
        len(LIMITING_FACTOR_ORDER) - 1,
    }


# -- property-based equivalence --------------------------------------------------------


_idle_phases = st.builds(
    DynamicPhase,
    name=st.just("idle"),
    duration_s=st.floats(0.05, 4.0),
    active_cores=st.just(0),
    package_cstate=st.sampled_from(["auto", "deepest", "C3", "c6", "C7"]),
)

_active_phases = st.builds(
    DynamicPhase,
    name=st.just("active"),
    duration_s=st.floats(0.05, 4.0),
    active_cores=st.integers(1, 4),
    activity=st.floats(0.05, 1.0),
    memory_intensity=st.floats(0.0, 1.0),
)

_scenarios = st.builds(
    DynamicScenario,
    name=st.just("random"),
    phases=st.lists(
        st.one_of(_idle_phases, _active_phases), min_size=1, max_size=4
    ).map(tuple),
    time_step_s=st.floats(0.05, 0.5),
    pl2_ratio=st.floats(1.0, 1.6),
    turbo_tau_s=st.floats(0.5, 20.0),
    thermal_capacitance_j_per_c=st.floats(1.0, 100.0),
    initial_temperature_c=st.one_of(st.none(), st.floats(35.0, 99.0)),
    initial_average_power_w=st.floats(0.0, 80.0),
    rebank_fraction=st.floats(0.0, 1.0),
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario=_scenarios)
def test_random_scenarios_bin_and_cstate_exact(
    darkgates_pcode, baseline_pcode, scenario
):
    """Random timelines produce identical bin and C-state traces on both paths.

    The two systems run as one heterogeneous batch, so the property also
    exercises lockstep mixing of a TDP-limited and a Vmax-limited run.
    """
    pairs = [(darkgates_pcode(91.0), scenario), (baseline_pcode(35.0), scenario)]
    simulator = BatchedDynamicsSimulator()
    batched = simulator.run_batch(pairs)
    for (pcode, _), result in zip(pairs, batched):
        reference = simulator.simulator(pcode).run(scenario)
        assert reference.frequencies_hz == result.frequencies_hz
        assert reference.package_cstates == result.package_cstates
        assert reference.limiting_factors == result.limiting_factors
        assert reference == result


def test_reference_simulator_still_standalone(baseline_pcode):
    """The retained per-run engine works without the batched wrapper."""
    result = DynamicsSimulator(baseline_pcode(35.0)).run(SCENARIOS[0])
    assert result.duration_s == pytest.approx(12.0, abs=0.1)
