"""Tests for the process-variation substrate: distributions, sampler, binning.

Covers the declarative distribution specs (validation, transforms,
Cholesky correlation), seeded sampling determinism (fixed seed == bitwise
identical draws), the die-variation parameterization hooks (leakage kt
monotonicity, varied candidate tables, C-state power), SKU binning (the
partition property, yields, quantiles) and the datasheet registry.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reporting import format_sku_table
from repro.common.errors import ConfigurationError
from repro.core.spec import SKU_BUILDERS, get_spec
from repro.pmu.cstates import PackageCState
from repro.pmu.dvfs import CpuDemand, die_voltage_offsets
from repro.soc.skus import SKU_DESCRIPTIONS, describe_sku, sku_descriptions
from repro.variation.binning import (
    BinningPolicy,
    DieMetrics,
    SkuBin,
    die_metrics,
    skylake_binning_policy,
)
from repro.variation.distributions import (
    NOMINAL_PARAMETERS,
    ParameterVariation,
    VariationModel,
    cholesky_factor,
    skylake_process_variation,
)
from repro.variation.sampler import (
    NOMINAL_DIE,
    DiePopulation,
    DiePopulationSampler,
    DieVariation,
)

# -- distributions ---------------------------------------------------------------------


def test_parameter_variation_rejects_unknown_parameter():
    with pytest.raises(ConfigurationError):
        ParameterVariation("frobnication_scale")


def test_parameter_variation_rejects_unknown_distribution():
    with pytest.raises(ConfigurationError):
        ParameterVariation("leakage_scale", distribution="cauchy")


def test_truncated_normal_requires_a_bound():
    with pytest.raises(ConfigurationError):
        ParameterVariation("vf_offset_v", distribution="truncated_normal")


def test_parameter_variation_center_defaults_to_nominal():
    assert ParameterVariation("leakage_scale").center == 1.0
    assert ParameterVariation("vf_offset_v").center == 0.0


def test_transforms_and_clipping():
    z = np.array([-2.0, 0.0, 2.0])
    normal = ParameterVariation("vf_offset_v", "normal", sigma=0.01)
    assert np.allclose(normal.transform(z), [-0.02, 0.0, 0.02])
    lognormal = ParameterVariation("leakage_scale", "lognormal", sigma=0.5)
    assert np.allclose(lognormal.transform(z), np.exp(0.5 * z))
    truncated = ParameterVariation(
        "vf_offset_v", "truncated_normal", sigma=0.1, lower=-0.05, upper=0.05
    )
    assert np.array_equal(truncated.transform(z), [-0.05, 0.0, 0.05])


def test_cholesky_factor_validation():
    with pytest.raises(ConfigurationError):
        cholesky_factor([[1.0, 0.0]])  # not square
    with pytest.raises(ConfigurationError):
        cholesky_factor([[1.0, 0.5], [0.2, 1.0]])  # asymmetric
    with pytest.raises(ConfigurationError):
        cholesky_factor([[2.0, 0.0], [0.0, 1.0]])  # non-unit diagonal
    with pytest.raises(ConfigurationError):
        cholesky_factor([[1.0, 1.0], [1.0, 1.0]])  # singular
    factor = cholesky_factor([[1.0, 0.5], [0.5, 1.0]])
    assert np.allclose(factor @ factor.T, [[1.0, 0.5], [0.5, 1.0]])


def test_variation_model_rejects_duplicates_and_size_mismatch():
    with pytest.raises(ConfigurationError):
        VariationModel(
            (
                ParameterVariation("leakage_scale"),
                ParameterVariation("leakage_scale"),
            )
        )
    with pytest.raises(ConfigurationError):
        VariationModel(
            (ParameterVariation("leakage_scale"),),
            correlation=((1.0, 0.0), (0.0, 1.0)),
        )


def test_variation_model_round_trips():
    model = skylake_process_variation()
    assert VariationModel.from_dict(model.to_dict()) == model


# -- sampler ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fixed_seed_gives_bitwise_identical_draws(seed):
    sampler = DiePopulationSampler(skylake_process_variation())
    first = sampler.sample(64, seed=seed)
    second = sampler.sample(64, seed=seed)
    for name in NOMINAL_PARAMETERS:
        assert np.array_equal(first.column(name), second.column(name))


def test_unsampled_parameters_sit_at_nominal():
    model = VariationModel((ParameterVariation("leakage_scale", "lognormal", sigma=0.2),))
    population = DiePopulationSampler(model).sample(16, seed=1)
    assert np.array_equal(population.vf_offset_v, np.zeros(16))
    assert np.array_equal(population.thermal_resistance_scale, np.ones(16))


def test_positive_parameters_guarded():
    model = VariationModel(
        (ParameterVariation("leakage_scale", "normal", sigma=5.0),)
    )
    with pytest.raises(ConfigurationError):
        DiePopulationSampler(model).sample(256, seed=0)


def test_default_model_correlates_leakage_against_vf_offset():
    population = DiePopulationSampler(skylake_process_variation()).sample(
        4096, seed=5
    )
    correlation = np.corrcoef(
        np.log(population.leakage_scale), population.vf_offset_v
    )[0, 1]
    assert correlation < -0.3  # leaky dice are fast dice


def test_die_materialisation_and_round_trip():
    population = DiePopulationSampler(skylake_process_variation()).sample(8, seed=2)
    die = population.die(3)
    assert die.leakage_scale == float(population.leakage_scale[3])
    assert DieVariation.from_dict(die.to_dict()) == die
    assert NOMINAL_DIE.is_nominal and not die.is_nominal
    with pytest.raises(ConfigurationError):
        population.die(8)


def test_population_specs_are_distinct_variants():
    base = get_spec("darkgates", tdp_w=45.0)
    population = DiePopulationSampler(skylake_process_variation()).sample(4, seed=0)
    specs = population.specs(base)
    assert len({spec.name for spec in specs}) == 4
    assert all(spec.die_variation == population.die(i) for i, spec in enumerate(specs))
    assert all(spec.tdp_w == base.tdp_w for spec in specs)


def test_population_rejects_ragged_or_unknown_columns():
    with pytest.raises(ConfigurationError):
        DiePopulation({"leakage_scale": np.ones(3), "vf_offset_v": np.zeros(2)})
    with pytest.raises(ConfigurationError):
        DiePopulation({"unknown_knob": np.ones(3)})


def test_sampler_rejects_seed_and_rng_together():
    sampler = DiePopulationSampler(skylake_process_variation())
    with pytest.raises(ConfigurationError):
        sampler.sample(4, seed=1, rng=np.random.default_rng(1))


# -- parameterization hooks ------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    low=st.floats(min_value=-0.003, max_value=0.003),
    delta=st.floats(min_value=1e-5, max_value=0.003),
)
def test_leakage_monotone_in_kt_shift(darkgates_pcode, low, delta):
    """Above the reference temperature, more kt means more leakage."""
    table = darkgates_pcode(91.0).dvfs_policy.candidate_table(CpuDemand(active_cores=4))
    hot_c = 85.0  # above the 60 C reference point
    lower = table.varied(kt_delta_per_c=low).package_power_w(hot_c)
    higher = table.varied(kt_delta_per_c=low + delta).package_power_w(hot_c)
    assert (higher >= lower).all()
    assert higher.sum() > lower.sum()


def test_nominal_variation_table_is_bitwise_nominal(darkgates_pcode):
    demand = CpuDemand(active_cores=2)
    nominal = darkgates_pcode(91.0).dvfs_policy.candidate_table(demand)
    varied = nominal.varied()
    assert np.array_equal(varied.vr_voltages_v, nominal.vr_voltages_v)
    assert np.array_equal(varied.active_dynamic_w, nominal.active_dynamic_w)
    assert np.array_equal(varied.vmax_ok, nominal.vmax_ok)
    for varied_group, nominal_group in zip(
        varied.active_leakage_groups, nominal.active_leakage_groups
    ):
        assert varied_group[:3] == nominal_group[:3]
        assert np.array_equal(varied_group[3], nominal_group[3])


def test_vf_offset_shifts_fmax_and_vmax_feasibility(darkgates_pcode):
    pcode = darkgates_pcode(91.0)
    demand = CpuDemand(active_cores=1)
    nominal = pcode.dvfs_policy.candidate_table(demand)
    slow = nominal.varied(vr_offset_v=0.05, power_offset_v=0.05)
    assert slow.vmax_ok.sum() < nominal.vmax_ok.sum()
    fast = nominal.varied(vr_offset_v=-0.05, power_offset_v=-0.05)
    assert fast.vmax_ok.sum() >= nominal.vmax_ok.sum()
    # The vf_curve-level hook agrees with the table mask within one bin.
    curve = pcode.vf_curve
    for offset, table in ((0.05, slow), (-0.05, fast), (0.0, nominal)):
        hook_fmax = curve.fmax_hz(1, voltage_offset_v=offset)
        mask_fmax = float(table.frequencies_hz[table.vmax_ok.nonzero()[0].max()])
        assert abs(hook_fmax - mask_fmax) <= 100e6 + 1e-6


def test_powergate_resistance_only_costs_gated_parts():
    gated = die_voltage_offsets(0.0, 1.5, 0.001, bypass_mode=False)
    bypassed = die_voltage_offsets(0.0, 1.5, 0.001, bypass_mode=True)
    assert gated[0] > 0.0 and gated[1] == 0.0
    assert bypassed == (0.0, 0.0)


def test_cstate_power_scales_with_leakage(darkgates_pcode, baseline_pcode):
    for pcode in (darkgates_pcode(91.0), baseline_pcode(91.0)):
        model = pcode.cstate_model
        nominal = model.power_w(PackageCState.C7)
        leaky = float(model.varied_power_w(PackageCState.C7, 2.0, 0.0))
        assert leaky > nominal
        # C8 kills the core rail: leakage scale is irrelevant there.
        assert float(model.varied_power_w(PackageCState.C8, 2.0, 0.0)) == (
            pytest.approx(model.power_w(PackageCState.C8))
        )
    # Array knobs broadcast.
    scales = np.array([0.5, 1.0, 2.0])
    powers = np.asarray(
        darkgates_pcode(91.0)
        .cstate_model.varied_power_w(PackageCState.C7, scales, 0.0)
    )
    assert powers.shape == (3,) and (np.diff(powers) > 0).all()


def test_varied_spec_resolves_slower_when_leaky_and_slow():
    spec = get_spec("darkgates", tdp_w=35.0)
    slow_die = DieVariation(leakage_scale=1.6, vf_offset_v=0.04)
    varied = spec.variant(name="slow-die", die_variation=slow_die).build()
    demand = CpuDemand(active_cores=4)
    nominal_point = spec.build().resolve_cpu_operating_point(demand)
    varied_point = varied.resolve_cpu_operating_point(demand)
    assert varied_point.frequency_hz < nominal_point.frequency_hz


# -- binning ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    fmax=st.lists(
        st.floats(min_value=0.0, max_value=5.5e9), min_size=1, max_size=40
    ),
    data=st.data(),
)
def test_binning_is_a_partition(fmax, data):
    count = len(fmax)
    metrics = DieMetrics(
        fmax_hz=np.array(fmax),
        leakage_w=np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=3.0),
                    min_size=count,
                    max_size=count,
                )
            )
        ),
        vmin_v=np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.4, max_value=0.8),
                    min_size=count,
                    max_size=count,
                )
            )
        ),
    )
    policy = skylake_binning_policy()
    assignments = policy.assign(metrics)
    # Every die lands in exactly one bin or scrap...
    assert assignments.shape == (count,)
    assert np.isin(assignments, (-1, 0, 1)).all()
    # ...and the report's counts cover the population exactly once.
    report = policy.report(metrics, assignments)
    assert sum(report.counts.values()) == count
    assert sum(report.yield_fractions.values()) == pytest.approx(1.0)


def test_default_binning_populates_every_bin(darkgates_pcode):
    population = DiePopulationSampler(skylake_process_variation()).sample(
        2048, seed=7
    )
    metrics = die_metrics(darkgates_pcode(91.0), population)
    report = skylake_binning_policy().report(metrics)
    assert all(report.counts[name] > 0 for name in (*report.bin_names, "scrap"))
    premium = report.metric_quantiles["premium-desktop"]["fmax_hz"]
    mainstream = report.metric_quantiles["mainstream-mobile"]["fmax_hz"]
    assert premium[1] > mainstream[1]  # premium median fmax is higher
    assert report == type(report).from_dict(report.to_dict())


def test_die_metrics_rejects_varied_pcode():
    spec = get_spec("darkgates").variant(
        name="varied", die_variation=DieVariation(leakage_scale=1.2)
    )
    population = DiePopulationSampler(skylake_process_variation()).sample(4, seed=0)
    with pytest.raises(ConfigurationError):
        die_metrics(spec.build(), population)


def test_bin_validation():
    with pytest.raises(ConfigurationError):
        SkuBin(name="scrap")
    with pytest.raises(ConfigurationError):
        SkuBin(name="x", sku="not-a-sku")
    with pytest.raises(ConfigurationError):
        BinningPolicy(bins=())
    with pytest.raises(ConfigurationError):
        BinningPolicy(bins=(SkuBin(name="a"), SkuBin(name="a")))
    policy = skylake_binning_policy()
    assert BinningPolicy.from_dict(policy.to_dict()) == policy


# -- SKU registry ----------------------------------------------------------------------


def test_sku_registry_aligns_with_builders():
    assert set(SKU_DESCRIPTIONS) == set(SKU_BUILDERS)
    assert describe_sku("broadwell").name == "i7-5775C-class"
    with pytest.raises(ConfigurationError):
        describe_sku("alderlake")
    # The legacy Table 2 accessor serves the registry's Skylake rows.
    desktop, mobile = sku_descriptions()
    assert desktop is SKU_DESCRIPTIONS["skylake-s"]
    assert mobile is SKU_DESCRIPTIONS["skylake-h"]


def test_format_sku_table_renders_registry():
    rendered = format_sku_table()
    for description in SKU_DESCRIPTIONS.values():
        assert description.name in rendered
    two_rows = format_sku_table(sku_descriptions(), title="Table 2")
    assert "Table 2" in two_rows and "i7-5775C-class" not in two_rows
