"""Unit tests for the power/thermal substrate."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, ConstraintViolation
from repro.power.budget import DomainPower, PowerBudget
from repro.power.cdyn import ActivityCdyn, CdynTable
from repro.power.dynamic import DynamicPowerModel
from repro.power.leakage import LeakagePowerModel
from repro.power.thermal import ThermalLimits, ThermalModel


# -- dynamic power ---------------------------------------------------------------------------


def test_dynamic_power_formula():
    model = DynamicPowerModel(cdyn_max_f=4e-9)
    # P = C * V^2 * f at full activity
    assert model.power_w(1.0, 1e9, 1.0) == pytest.approx(4.0)


def test_dynamic_power_scales_quadratically_with_voltage():
    model = DynamicPowerModel(cdyn_max_f=4e-9)
    assert model.power_w(1.2, 1e9) == pytest.approx(model.power_w(0.6, 1e9) * 4.0)


def test_dynamic_power_scales_linearly_with_frequency_and_activity():
    model = DynamicPowerModel(cdyn_max_f=4e-9)
    assert model.power_w(1.0, 2e9) == pytest.approx(2 * model.power_w(1.0, 1e9))
    assert model.power_w(1.0, 1e9, 0.5) == pytest.approx(0.5 * model.power_w(1.0, 1e9, 1.0))


def test_dynamic_current_consistency():
    model = DynamicPowerModel(cdyn_max_f=4e-9)
    assert model.current_a(1.2, 3e9, 0.7) == pytest.approx(
        model.power_w(1.2, 3e9, 0.7) / 1.2
    )
    assert model.current_a(0.0, 3e9) == 0.0


def test_dynamic_virus_current_is_max_activity():
    model = DynamicPowerModel(cdyn_max_f=4e-9)
    assert model.virus_current_a(1.0, 1e9) >= model.current_a(1.0, 1e9, 0.6)


def test_dynamic_scaled():
    model = DynamicPowerModel(cdyn_max_f=4e-9)
    assert model.scaled(2.0).cdyn_max_f == pytest.approx(8e-9)


# -- leakage ----------------------------------------------------------------------------------


def test_leakage_reference_point():
    model = LeakagePowerModel(reference_power_w=0.5, reference_voltage_v=1.0, reference_temperature_c=60.0)
    assert model.power_w(1.0, 60.0) == pytest.approx(0.5)


def test_leakage_increases_with_voltage_and_temperature():
    model = LeakagePowerModel(reference_power_w=0.5)
    assert model.power_w(1.2, 60.0) > model.power_w(1.0, 60.0)
    assert model.power_w(1.0, 90.0) > model.power_w(1.0, 60.0)


def test_leakage_zero_at_zero_voltage():
    model = LeakagePowerModel(reference_power_w=0.5)
    assert model.power_w(0.0, 90.0) == 0.0
    assert model.current_a(0.0, 90.0) == 0.0


def test_leakage_gated_residual_fraction():
    model = LeakagePowerModel(reference_power_w=0.5)
    full = model.power_w(1.0, 60.0)
    assert model.gated_power_w(1.0, 60.0, residual_fraction=0.02) == pytest.approx(full * 0.02)


def test_leakage_temperature_doubling_scale():
    # With the default 0.017/degC coefficient leakage roughly doubles over ~41 degC.
    model = LeakagePowerModel(reference_power_w=1.0)
    ratio = model.power_w(1.0, 101.0) / model.power_w(1.0, 60.0)
    assert ratio == pytest.approx(2.0, rel=0.05)


def test_leakage_scaled():
    model = LeakagePowerModel(reference_power_w=0.5)
    assert model.scaled(2.0).power_w(1.0, 60.0) == pytest.approx(2 * model.power_w(1.0, 60.0))


# -- cdyn table ----------------------------------------------------------------------------------


def test_cdyn_client_default_ordering():
    table = CdynTable.client_default()
    assert table.fraction("idle") < table.fraction("typical") < table.fraction("power_virus")
    assert table.fraction("power_virus") == 1.0


def test_cdyn_memory_bound_below_compute_bound():
    table = CdynTable.client_default()
    assert table.fraction("memory_bound") < table.fraction("compute_bound")


def test_cdyn_unknown_level_raises():
    table = CdynTable.client_default()
    with pytest.raises(ConfigurationError):
        table.fraction("does_not_exist")


def test_cdyn_duplicate_rejected():
    table = CdynTable.client_default()
    with pytest.raises(ConfigurationError):
        table.add(ActivityCdyn("idle", 0.5))


def test_cdyn_names_in_insertion_order():
    table = CdynTable.client_default()
    assert table.names()[0] == "idle"
    assert table.names()[-1] == "power_virus"


# -- thermal -----------------------------------------------------------------------------------


def test_thermal_resistance_designed_for_tdp():
    model = ThermalModel(ThermalLimits(tdp_w=65.0, tjmax_c=100.0, ambient_c=35.0))
    assert model.junction_temperature_c(65.0) == pytest.approx(100.0)


def test_thermal_lower_tdp_means_weaker_cooler():
    low = ThermalModel(ThermalLimits(tdp_w=35.0))
    high = ThermalModel(ThermalLimits(tdp_w=91.0))
    assert low.thermal_resistance_c_per_w > high.thermal_resistance_c_per_w


def test_thermal_safety_check():
    model = ThermalModel(ThermalLimits(tdp_w=65.0))
    assert model.is_thermally_safe(64.9)
    assert not model.is_thermally_safe(66.0)


def test_thermal_headroom():
    model = ThermalModel(ThermalLimits(tdp_w=65.0))
    assert model.headroom_w(60.0) == pytest.approx(5.0)
    assert model.headroom_w(70.0) == pytest.approx(-5.0)


def test_thermal_temperature_rise_for_extra_power():
    model = ThermalModel(ThermalLimits(tdp_w=91.0, tjmax_c=100.0, ambient_c=35.0))
    # ~0.71 degC/W cooler: ~5 degC for ~7 W of extra leakage.
    assert model.temperature_rise_c(7.0) == pytest.approx(5.0, rel=0.05)


def test_thermal_rejects_ambient_above_tjmax():
    with pytest.raises(ConfigurationError):
        ThermalLimits(tdp_w=65.0, tjmax_c=100.0, ambient_c=120.0)


def test_thermal_rejects_negative_power():
    model = ThermalModel(ThermalLimits(tdp_w=65.0))
    with pytest.raises(ConfigurationError):
        model.junction_temperature_c(-1.0)


# -- power budget ---------------------------------------------------------------------------------


def test_budget_allocation_and_remainder():
    budget = PowerBudget(total_w=45.0)
    budget.allocate("uncore", 6.0)
    budget.allocate("cores", 9.0)
    remainder = budget.allocate_remainder("graphics")
    assert remainder == pytest.approx(30.0)
    assert budget.remaining_w() == pytest.approx(0.0)
    assert budget.utilisation() == pytest.approx(1.0)


def test_budget_over_allocation_raises():
    budget = PowerBudget(total_w=35.0)
    budget.allocate("cores", 30.0)
    with pytest.raises(ConstraintViolation):
        budget.allocate("graphics", 10.0)


def test_budget_duplicate_domain_raises_constraint_violation():
    budget = PowerBudget(total_w=35.0)
    budget.allocate("cores", 10.0)
    with pytest.raises(ConstraintViolation):
        budget.allocate("cores", 5.0)
    # The first allocation must survive the rejected re-allocation attempt.
    assert budget.allocation_for("cores") == pytest.approx(10.0)


def test_budget_remainder_duplicate_domain_raises_constraint_violation():
    budget = PowerBudget(total_w=35.0)
    budget.allocate("cores", 10.0)
    with pytest.raises(ConstraintViolation):
        budget.allocate_remainder("cores")
    assert budget.allocation_for("cores") == pytest.approx(10.0)


def test_budget_queries():
    budget = PowerBudget(total_w=65.0)
    budget.allocate("cores", 20.0)
    assert budget.allocation_for("cores") == pytest.approx(20.0)
    assert budget.allocation_for("graphics") == 0.0
    assert budget.domains() == ["cores"]


def test_domain_power_total():
    power = DomainPower(domain="cores", dynamic_w=18.0, leakage_w=2.5)
    assert power.total_w == pytest.approx(20.5)
