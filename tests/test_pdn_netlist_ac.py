"""Unit tests for the netlist, AC analysis, ladder builder, and droop simulator."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.pdn.ac import ACAnalysis
from repro.pdn.elements import Capacitor, Inductor, Resistor
from repro.pdn.droop import DroopSimulator
from repro.pdn.ladder import LadderStage, PdnConfiguration, SkylakePdnBuilder, core_node
from repro.pdn.netlist import GROUND, Netlist


# -- netlist ------------------------------------------------------------------------------


def _voltage_divider() -> Netlist:
    netlist = Netlist()
    netlist.add("r1", "in", "mid", Resistor(1.0))
    netlist.add("r2", "mid", GROUND, Resistor(1.0))
    return netlist


def test_netlist_node_bookkeeping():
    netlist = _voltage_divider()
    assert netlist.node_count() == 2
    assert set(netlist.nodes) == {"in", "mid"}
    assert netlist.has_node(GROUND)
    assert not netlist.has_node("elsewhere")


def test_netlist_rejects_self_loop():
    netlist = Netlist()
    with pytest.raises(ConfigurationError):
        netlist.add("bad", "a", "a", Resistor(1.0))


def test_netlist_rejects_duplicate_branch_names():
    netlist = Netlist()
    netlist.add("r", "a", GROUND, Resistor(1.0))
    with pytest.raises(ConfigurationError):
        netlist.add("r", "b", GROUND, Resistor(1.0))


def test_netlist_solve_series_resistors():
    netlist = _voltage_divider()
    voltages = netlist.solve_node_voltages(0.0, {"in": 1.0})
    # 1 A into two series 1-ohm resistors to ground: 2 V at "in", 1 V at "mid".
    assert voltages["in"].real == pytest.approx(2.0)
    assert voltages["mid"].real == pytest.approx(1.0)


def test_netlist_dc_path_resistance():
    netlist = _voltage_divider()
    assert netlist.dc_path_resistance("in", GROUND) == pytest.approx(2.0)
    assert netlist.dc_path_resistance("in", "mid") == pytest.approx(1.0)


def test_netlist_singular_matrix_raises():
    netlist = Netlist()
    # A capacitor to ground is an open circuit at DC: the node floats.
    netlist.add("c", "floating", GROUND, Capacitor(1e-9))
    with pytest.raises(SimulationError):
        netlist.solve_node_voltages(0.0, {"floating": 1.0})


def test_netlist_branches_at():
    netlist = _voltage_divider()
    assert {b.name for b in netlist.branches_at("mid")} == {"r1", "r2"}


def test_netlist_merge_nodes_drops_internal_branches():
    netlist = Netlist()
    netlist.add("supply", "a", GROUND, Resistor(1.0))
    netlist.add("gate", "a", "b", Resistor(0.5))
    netlist.add("load", "b", GROUND, Resistor(2.0))
    merged = netlist.merge_nodes("a", ["b"])
    names = [b.name for b in merged.branches]
    assert "gate" not in names
    assert merged.dc_path_resistance("a", GROUND) == pytest.approx(2.0 / 3.0)


def test_netlist_summary_rows():
    netlist = _voltage_divider()
    rows = netlist.summary()
    assert ("r1", "in", "mid", "Resistor") in rows


# -- AC analysis ----------------------------------------------------------------------------


def test_ac_impedance_of_single_resistor():
    netlist = Netlist()
    netlist.add("r", "port", GROUND, Resistor(3.3))
    analysis = ACAnalysis(netlist, "port")
    assert abs(analysis.impedance_at(1e6)) == pytest.approx(3.3)


def test_ac_rlc_resonance_peak():
    # Parallel L-C to ground shows an anti-resonance peak at f0.
    netlist = Netlist()
    netlist.add("l", "port", GROUND, Inductor(10e-9, series_resistance_ohm=1e-3))
    netlist.add("c", "port", GROUND, Capacitor(1e-6, esr_ohm=1e-3))
    analysis = ACAnalysis(netlist, "port")
    profile = analysis.sweep(start_hz=1e4, stop_hz=1e8, points_per_decade=60)
    peak = profile.peak()
    expected_f0 = 1.0 / (2 * 3.14159265 * (10e-9 * 1e-6) ** 0.5)
    assert peak.frequency_hz == pytest.approx(expected_f0, rel=0.15)


def test_ac_sweep_profile_shapes():
    netlist = Netlist()
    netlist.add("r", "port", GROUND, Resistor(1.0))
    profile = ACAnalysis(netlist, "port").sweep(start_hz=1e5, stop_hz=1e7, points_per_decade=10)
    assert len(profile.points) == len(profile.frequencies_hz())
    assert profile.magnitudes_ohm().min() == pytest.approx(1.0)
    assert profile.impedance_at(3e6) == pytest.approx(1.0)


def test_ac_rejects_unknown_observation_node():
    netlist = Netlist()
    netlist.add("r", "port", GROUND, Resistor(1.0))
    with pytest.raises(ConfigurationError):
        ACAnalysis(netlist, "nonexistent")


def test_ac_rejects_bad_sweep_bounds():
    netlist = Netlist()
    netlist.add("r", "port", GROUND, Resistor(1.0))
    with pytest.raises(ConfigurationError):
        ACAnalysis(netlist, "port").sweep(start_hz=1e7, stop_hz=1e6)


def test_profile_ratio_requires_matching_grids():
    netlist = Netlist()
    netlist.add("r", "port", GROUND, Resistor(1.0))
    analysis = ACAnalysis(netlist, "port")
    a = analysis.sweep(points_per_decade=10)
    b = analysis.sweep(points_per_decade=20)
    with pytest.raises(ConfigurationError):
        a.ratio_to(b)


# -- Skylake ladder builder ----------------------------------------------------------------------


def test_builder_gated_netlist_has_per_core_nodes(gated_pdn):
    netlist = SkylakePdnBuilder(gated_pdn).build_netlist()
    for index in range(gated_pdn.core_count):
        assert netlist.has_node(core_node(index))


def test_builder_bypassed_netlist_merges_core_domains(bypassed_pdn):
    netlist = SkylakePdnBuilder(bypassed_pdn).build_netlist()
    assert netlist.has_node(core_node(0))
    assert not netlist.has_node(core_node(1))


def test_builder_dc_resistance_lower_when_bypassed(gated_pdn, bypassed_pdn):
    gated = SkylakePdnBuilder(gated_pdn)
    bypassed = SkylakePdnBuilder(bypassed_pdn)
    assert bypassed.dc_resistance_ohm() < gated.dc_resistance_ohm()
    assert (
        bypassed.dc_resistance_beyond_loadline_ohm()
        < gated.dc_resistance_beyond_loadline_ohm()
    )


def test_builder_impedance_roughly_doubles_with_gates(gated_pdn, bypassed_pdn):
    gated_builder = SkylakePdnBuilder(gated_pdn)
    bypassed_builder = SkylakePdnBuilder(bypassed_pdn)
    gated_profile = ACAnalysis(
        gated_builder.build_netlist(), gated_builder.observation_node()
    ).sweep(points_per_decade=20)
    frequencies = [p.frequency_hz for p in gated_profile.points]
    bypassed_profile = ACAnalysis(
        bypassed_builder.build_netlist(), bypassed_builder.observation_node()
    ).sweep(frequencies_hz=frequencies)
    ratio = gated_profile.mean_ratio_to(bypassed_profile)
    assert 1.5 <= ratio <= 3.0


def test_builder_ladder_has_three_stages(gated_pdn):
    ladder = SkylakePdnBuilder(gated_pdn).build_ladder()
    assert [stage.name for stage in ladder] == ["vr_board", "package", "die"]


def test_builder_bypassed_ladder_die_stage_has_more_capacitance(gated_pdn, bypassed_pdn):
    gated_die = SkylakePdnBuilder(gated_pdn).build_ladder()[-1]
    bypassed_die = SkylakePdnBuilder(bypassed_pdn).build_ladder()[-1]
    assert bypassed_die.shunt_capacitance_f > gated_die.shunt_capacitance_f
    assert bypassed_die.series_resistance_ohm < gated_die.series_resistance_ohm


def test_configuration_with_bypass_round_trip(gated_pdn):
    assert gated_pdn.with_bypass().bypassed
    assert gated_pdn.with_bypass().with_gates().bypassed is False


def test_configuration_effective_values_reflect_sharing(gated_pdn, bypassed_pdn):
    assert (
        bypassed_pdn.effective_package_resistance_ohm()
        < gated_pdn.effective_package_resistance_ohm()
    )
    assert (
        bypassed_pdn.effective_die_path_resistance_ohm()
        < gated_pdn.effective_die_path_resistance_ohm()
    )
    assert bypassed_pdn.effective_die_mim().count > gated_pdn.effective_die_mim().count


def test_configuration_rejects_bad_core_count():
    with pytest.raises(ConfigurationError):
        PdnConfiguration(core_count=0)


# -- droop simulator ----------------------------------------------------------------------------


def _simple_ladder() -> list[LadderStage]:
    return [
        LadderStage(
            name="stage",
            series_resistance_ohm=1e-3,
            series_inductance_h=100e-12,
            shunt_capacitance_f=10e-6,
            shunt_esr_ohm=1e-3,
        )
    ]


def test_droop_settles_to_ir_drop():
    simulator = DroopSimulator(_simple_ladder(), nominal_voltage_v=1.0)
    result = simulator.simulate_current_step(step_current_a=20.0, duration_s=5e-6)
    # DC drop should converge to R * I = 20 mV.
    assert result.settled_drop_v == pytest.approx(0.02, rel=0.05)


def test_droop_worst_case_exceeds_dc_drop():
    simulator = DroopSimulator(_simple_ladder(), nominal_voltage_v=1.0)
    result = simulator.simulate_current_step(step_current_a=20.0, duration_s=5e-6)
    assert result.worst_droop_v >= result.settled_drop_v
    assert result.transient_overshoot_v >= 0.0


def test_droop_skylake_gated_worse_than_bypassed(gated_pdn, bypassed_pdn):
    gated = DroopSimulator(SkylakePdnBuilder(gated_pdn).build_ladder(), 1.0)
    bypassed = DroopSimulator(SkylakePdnBuilder(bypassed_pdn).build_ladder(), 1.0)
    step = dict(step_current_a=25.0, duration_s=3e-6, time_step_s=0.5e-9)
    assert (
        gated.simulate_current_step(**step).worst_droop_v
        > bypassed.simulate_current_step(**step).worst_droop_v
    )


def test_droop_minimum_voltage_below_nominal():
    simulator = DroopSimulator(_simple_ladder(), nominal_voltage_v=1.1)
    result = simulator.simulate_current_step(step_current_a=10.0, duration_s=2e-6)
    assert result.minimum_voltage_v() < 1.1


def test_droop_profile_callable():
    simulator = DroopSimulator(_simple_ladder(), nominal_voltage_v=1.0)
    result = simulator.simulate_profile(
        lambda t: 5.0 if t > 1e-7 else 0.0, duration_s=1e-6
    )
    assert result.load_voltage_v.shape == result.time_s.shape


def test_droop_rejects_empty_ladder():
    with pytest.raises(ConfigurationError):
        DroopSimulator([], nominal_voltage_v=1.0)


def test_droop_rejects_too_short_duration():
    simulator = DroopSimulator(_simple_ladder(), nominal_voltage_v=1.0)
    with pytest.raises(SimulationError):
        simulator.simulate_current_step(step_current_a=1.0, duration_s=1e-10, time_step_s=1e-9)
