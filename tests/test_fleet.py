"""Tests for the fleet scenario-generator subsystem (repro.fleet)."""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.fleet import FleetStudy, FleetStudyResult
from repro.analysis.study import Study
from repro.common.errors import ConfigurationError
from repro.core.spec import get_spec
from repro.fleet import (
    DiurnalArrivals,
    DutyCycleArrivals,
    EnsembleQos,
    FleetProfile,
    OnOffArrivals,
    OverlayArrivals,
    PoissonArrivals,
    QosAccumulator,
    QosReport,
    ScaledArrivals,
    ScenarioGenerator,
    SequenceArrivals,
    aggregate_reports,
    fleet_profile,
    fleet_profile_names,
)
from repro.sim.dynamics import DynamicsSimulator
from repro.sim.metrics import (
    RESULT_SCHEMA_VERSION,
    THROTTLE_FACTORS,
    DynamicRunResult,
    RunResult,
)
from repro.store.cache import StoreCache
from repro.store.hashing import canonical_payload
from repro.workloads.dynamics import build_scenario, scenario_names

# -- strategies ------------------------------------------------------------------------

_leaves = st.one_of(
    st.builds(
        PoissonArrivals,
        duration_s=st.floats(min_value=2.0, max_value=20.0),
        rate_hz=st.floats(min_value=0.0, max_value=8.0),
    ),
    st.builds(
        DiurnalArrivals,
        duration_s=st.floats(min_value=2.0, max_value=20.0),
        rate_hz=st.floats(min_value=0.0, max_value=8.0),
        amplitude=st.floats(min_value=0.0, max_value=1.0),
        period_s=st.floats(min_value=5.0, max_value=40.0),
    ),
    st.builds(
        OnOffArrivals,
        duration_s=st.floats(min_value=2.0, max_value=20.0),
        mean_on_s=st.floats(min_value=0.5, max_value=5.0),
        mean_off_s=st.floats(min_value=0.5, max_value=5.0),
        alpha=st.floats(min_value=1.1, max_value=2.0),
    ),
    st.builds(
        DutyCycleArrivals,
        duration_s=st.floats(min_value=2.0, max_value=20.0),
        period_s=st.floats(min_value=1.0, max_value=15.0),
        on_fraction=st.floats(min_value=0.0, max_value=1.0),
    ),
)

_seeds = st.integers(min_value=0, max_value=2**31)


# -- arrival validation ----------------------------------------------------------------


def test_arrival_validation_errors():
    with pytest.raises(ConfigurationError, match="duration_s"):
        PoissonArrivals(duration_s=0.0, rate_hz=1.0)
    with pytest.raises(ConfigurationError, match="rate_hz"):
        PoissonArrivals(duration_s=1.0, rate_hz=-1.0)
    with pytest.raises(ConfigurationError, match="alpha"):
        OnOffArrivals(duration_s=1.0, alpha=2.5)
    with pytest.raises(ConfigurationError, match="on_fraction"):
        DutyCycleArrivals(duration_s=1.0, on_fraction=1.5)
    with pytest.raises(ConfigurationError, match="amplitude"):
        DiurnalArrivals(duration_s=1.0, rate_hz=1.0, amplitude=2.0)
    a = PoissonArrivals(duration_s=1.0, rate_hz=1.0)
    with pytest.raises(ConfigurationError, match="count"):
        a.repeated(0)
    with pytest.raises(ConfigurationError, match="factor"):
        a.scaled(0.0)
    with pytest.raises(ConfigurationError, match="at least one child"):
        SequenceArrivals(children=())
    with pytest.raises(ConfigurationError, match="flattened"):
        SequenceArrivals(children=(a.then(a), a))
    with pytest.raises(ConfigurationError, match="flattened"):
        OverlayArrivals(children=(a.overlay(a), a))
    with pytest.raises(ConfigurationError, match="arrival process"):
        ScaledArrivals(process="nope", factor=2.0)


# -- composition laws (exact structural equalities) ------------------------------------


@given(a=_leaves, b=_leaves, c=_leaves)
@settings(max_examples=40, deadline=None)
def test_then_is_associative_and_flat(a, b, c):
    assert a.then(b).then(c) == a.then(b.then(c))
    assert a.then(b).then(c) == SequenceArrivals(children=(a, b, c))


@given(a=_leaves, count=st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_repeated_equals_then_chain(a, count):
    chained = a
    for _ in range(count - 1):
        chained = chained.then(a)
    assert a.repeated(count) == chained
    assert a.repeated(1) == a


@given(a=_leaves, j=st.floats(min_value=0.1, max_value=4.0),
       k=st.floats(min_value=0.1, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_scaled_folds(a, j, k):
    assert a.scaled(j).scaled(k) == ScaledArrivals(process=a, factor=j * k)


@given(a=_leaves, b=_leaves, c=_leaves)
@settings(max_examples=40, deadline=None)
def test_overlay_flattens(a, b, c):
    assert a.overlay(b).overlay(c) == OverlayArrivals(children=(a, b, c))
    assert a.overlay(b.overlay(c)) == OverlayArrivals(children=(a, b, c))


# -- sampling semantics ----------------------------------------------------------------


@given(a=_leaves, seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_sample_is_deterministic_nonnegative_and_readonly(a, seed):
    one = a.sample_load(1.0, seed)
    two = a.sample_load(1.0, seed)
    assert np.array_equal(one, two)
    assert (one >= 0.0).all()
    assert len(one) == max(1, round(a.duration_s / 1.0))
    assert not one.flags.writeable


@given(a=_leaves, b=_leaves, seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_sequence_sample_concatenates_child_paths(a, b, seed):
    combined = a.then(b).sample_load(1.0, seed)
    left = a.sample_load(1.0, seed, key=(0,))
    right = b.sample_load(1.0, seed, key=(1,))
    assert np.array_equal(combined, np.concatenate([left, right]))


@given(a=_leaves, b=_leaves, seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_overlay_sample_is_padded_sum_of_child_paths(a, b, seed):
    combined = a.overlay(b).sample_load(1.0, seed)
    left = a.sample_load(1.0, seed, key=(0,))
    right = b.sample_load(1.0, seed, key=(1,))
    total = np.zeros(max(len(left), len(right)))
    total[: len(left)] += left
    total[: len(right)] += right
    assert np.array_equal(combined, total)


@given(a=_leaves, factor=st.floats(min_value=0.1, max_value=5.0), seed=_seeds)
@settings(max_examples=40, deadline=None)
def test_scaled_sample_scales_without_reseeding(a, factor, seed):
    assert np.array_equal(
        a.scaled(factor).sample_load(1.0, seed),
        a.sample_load(1.0, seed) * factor,
    )


def test_duty_cycle_is_deterministic_and_exact():
    duty = DutyCycleArrivals(
        duration_s=20.0, period_s=10.0, on_fraction=0.5, load=2.0
    )
    loads = duty.sample_load(1.0, 123)
    expected = np.array([2.0] * 5 + [0.0] * 5 + [2.0] * 5 + [0.0] * 5)
    assert np.array_equal(loads, expected)
    # Partial-slot overlap: 2.5 s ON inside 2 s slots.
    partial = DutyCycleArrivals(
        duration_s=4.0, period_s=4.0, on_fraction=0.625, load=1.0
    ).sample_load(2.0, 0)
    assert np.allclose(partial, [1.0, 0.25])


def test_distinct_keys_give_independent_draws():
    a = PoissonArrivals(duration_s=50.0, rate_hz=5.0)
    assert not np.array_equal(
        a.sample_load(1.0, 9, key=(0,)), a.sample_load(1.0, 9, key=(1,))
    )


# -- profiles and the generator --------------------------------------------------------


def test_fleet_profile_registry_and_validation():
    assert fleet_profile_names() == ["consumer", "datacenter", "graphics"]
    assert fleet_profile("fleet-datacenter") == fleet_profile("datacenter")
    assert fleet_profile("datacenter", slot_s=2.0).slot_s == 2.0
    with pytest.raises(ConfigurationError, match="known profiles"):
        fleet_profile("nope")
    with pytest.raises(ConfigurationError, match="max_cores"):
        fleet_profile("datacenter", max_cores=0)
    with pytest.raises(ConfigurationError, match="FleetProfile"):
        ScenarioGenerator("datacenter")
    generator = ScenarioGenerator(fleet_profile("datacenter"))
    with pytest.raises(ConfigurationError, match="seed"):
        generator.compile(seed=-1)
    with pytest.raises(ConfigurationError, match="member"):
        generator.compile(member=True)
    with pytest.raises(ConfigurationError, match="count"):
        generator.ensemble(count=0)


def test_quantize_mapping():
    profile = fleet_profile("datacenter", max_cores=4, base_activity=0.8)
    assert profile.quantize(0.0) == (0, 0.0)
    assert profile.quantize(0.04) == (0, 0.0)  # below idle threshold
    cores, activity = profile.quantize(1.0)
    assert cores == 1 and activity == pytest.approx(0.8)
    cores, activity = profile.quantize(2.5)
    assert cores == 3
    cores, _ = profile.quantize(9.0)
    assert cores == 4  # capped at max_cores


def test_scenario_builders_match_library_compilation():
    assert set(scenario_names()) >= {
        "fleet-consumer", "fleet-datacenter", "fleet-graphics",
    }
    built = build_scenario("fleet-graphics", seed=5, member=2)
    library = ScenarioGenerator(fleet_profile("graphics")).compile(
        seed=5, member=2
    )
    assert built == library
    assert built.name == "fleet-graphics#s5m2"
    # Builder overrides replace profile fields before compilation.
    coarse = build_scenario("fleet-graphics", seed=5, slot_s=10.0)
    assert coarse != build_scenario("fleet-graphics", seed=5)


@given(
    seed=_seeds,
    small=st.integers(min_value=1, max_value=4),
    extra=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_ensemble_prefix_stability(seed, small, extra):
    generator = ScenarioGenerator(fleet_profile("consumer"))
    short = generator.ensemble(seed=seed, count=small)
    long = generator.ensemble(seed=seed, count=small + extra)
    assert long[:small] == short


def test_compile_is_bit_identical_across_processes():
    scenario = ScenarioGenerator(fleet_profile("datacenter")).compile(
        seed=42, member=3
    )
    local = hashlib.sha256(
        json.dumps(canonical_payload(scenario), sort_keys=True).encode()
    ).hexdigest()
    script = (
        "import hashlib, json\n"
        "from repro.fleet import ScenarioGenerator, fleet_profile\n"
        "from repro.store.hashing import canonical_payload\n"
        "s = ScenarioGenerator(fleet_profile('datacenter'))"
        ".compile(seed=42, member=3)\n"
        "print(hashlib.sha256(json.dumps(canonical_payload(s),"
        " sort_keys=True).encode()).hexdigest())\n"
    )
    remote = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert remote == local


def test_compiled_scenarios_are_valid_and_cover_the_horizon():
    for name in fleet_profile_names():
        profile = fleet_profile(name)
        scenario = ScenarioGenerator(profile).compile(seed=1)
        assert scenario.duration_s == pytest.approx(
            max(1, round(profile.arrivals.duration_s / profile.slot_s))
            * profile.slot_s
        )
        assert all(phase.duration_s > 0 for phase in scenario.phases)
        active = [p for p in scenario.phases if not p.is_idle]
        assert active, f"profile {name} compiled to an all-idle timeline"
        assert all(p.active_cores <= profile.max_cores for p in active)


# -- QoS reports -----------------------------------------------------------------------


def _result(frequencies, limits, name="unit"):
    n = len(frequencies)
    return DynamicRunResult(
        scenario_name=name,
        time_step_s=0.1,
        pl1_w=35.0,
        pl2_w=44.0,
        times_s=tuple(0.1 * (i + 1) for i in range(n)),
        frequencies_hz=tuple(frequencies),
        package_powers_w=(10.0,) * n,
        temperatures_c=(50.0,) * n,
        average_powers_w=(10.0,) * n,
        limiting_factors=tuple(limits),
        package_cstates=tuple(
            "C0" if f > 0 else "C8" for f in frequencies
        ),
    )


def test_qos_report_exact_metrics():
    result = _result(
        [0.0, 2.5e9, 1.5e9, 3.0e9, 1.0e9],
        ["none", "tdp", "thermal", "vmax", "tdp"],
    )
    report = QosReport.from_result(result, slo_frequency_hz=2.0e9)
    assert report.active_steps == 4
    assert report.violation_rate == pytest.approx(0.5)
    assert report.throttle_residency == {
        "tdp": pytest.approx(0.5), "thermal": pytest.approx(0.25),
    }
    assert report.throttled_fraction == pytest.approx(0.75)
    # p99 of 4 samples is the max latency proxy: slo / min frequency.
    assert report.p99_latency_proxy == pytest.approx(2.0e9 / 1.0e9)
    assert report.mean_frequency_hz == pytest.approx(2.0e9)
    assert not report.meets_slo


def test_qos_empty_run_reports_zeros():
    report = QosAccumulator().report("idle", 2.0e9)
    assert report.active_steps == 0
    assert report.violation_rate == 0.0
    assert report.p99_latency_proxy == 0.0
    assert report.meets_slo


@given(
    steps=st.lists(
        st.tuples(
            st.one_of(st.just(0.0), st.floats(min_value=1e9, max_value=4e9)),
            st.sampled_from(["none", "tdp", "thermal", "vmax"]),
        ),
        min_size=1,
        max_size=40,
    ),
    splits=st.lists(st.integers(min_value=0, max_value=40), max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_qos_invariant_under_rechunking(steps, splits):
    frequencies = [f for f, _ in steps]
    limits = [l for _, l in steps]
    whole = (
        QosAccumulator().add_steps(frequencies, limits).report("x", 2.0e9)
    )
    cuts = sorted({min(s, len(steps)) for s in splits} | {0, len(steps)})
    chunked = QosAccumulator()
    for lo, hi in zip(cuts, cuts[1:]):
        chunked.add_steps(frequencies[lo:hi], limits[lo:hi])
    assert chunked.report("x", 2.0e9) == whole
    # Merging per-chunk accumulators reproduces the same report too.
    merged = QosAccumulator()
    for lo, hi in zip(cuts, cuts[1:]):
        merged.merge(
            QosAccumulator().add_steps(frequencies[lo:hi], limits[lo:hi])
        )
    assert merged.report("x", 2.0e9) == whole


def test_qos_json_round_trips_and_schema_guard():
    result = _result([2.5e9, 1.5e9], ["tdp", "thermal"])
    report = QosReport.from_result(result)
    payload = report.to_dict()
    assert payload["schema_version"] == RESULT_SCHEMA_VERSION
    assert QosReport.from_dict(json.loads(json.dumps(payload))) == report
    ensemble = aggregate_reports([report, report], name="pair")
    restored = EnsembleQos.from_dict(json.loads(json.dumps(ensemble.to_dict())))
    assert restored == ensemble
    newer = dict(payload, schema_version=RESULT_SCHEMA_VERSION + 1)
    with pytest.raises(ConfigurationError, match="newer"):
        QosReport.from_dict(newer)


def test_aggregate_reports_pools_by_active_steps():
    a = QosAccumulator().add_steps([1.0e9] * 3, ["tdp"] * 3).report("a", 2.0e9)
    b = QosAccumulator().add_steps([3.0e9], ["vmax"]).report("b", 2.0e9)
    pooled = aggregate_reports([a, b], name="pool")
    assert pooled.members == 2
    assert pooled.active_steps == 4
    assert pooled.violation_rate == pytest.approx(0.75)
    assert pooled.worst_violation_rate == pytest.approx(1.0)
    assert pooled.throttle_residency["tdp"] == pytest.approx(0.75)
    assert pooled.p99_latency_proxy == pytest.approx(2.0)
    with pytest.raises(ConfigurationError, match="different SLOs"):
        aggregate_reports(
            [a, QosAccumulator().report("c", 1.0e9)]
        )
    with pytest.raises(ConfigurationError, match="at least one"):
        aggregate_reports([])


# -- DynamicRunResult summary promotion ------------------------------------------------


def test_dynamic_result_summary_is_first_class_and_round_trips():
    result = _result([2.5e9, 1.5e9, 0.0], ["tdp", "thermal", "none"])
    assert set(result.throttle_residency()) == set(THROTTLE_FACTORS)
    assert result.throttle_residency()["tdp"] == pytest.approx(0.5)
    assert result.throttled_fraction == pytest.approx(1.0)
    payload = result.to_dict()
    assert payload["schema_version"] == RESULT_SCHEMA_VERSION
    assert payload["summary"]["throttle_residency"]["thermal"] == (
        pytest.approx(0.5)
    )
    assert payload["summary"]["sustained_frequency_hz"] == pytest.approx(
        result.sustained_frequency_hz
    )
    assert RunResult.from_dict(json.loads(json.dumps(payload))) == result


def test_dynamic_result_accepts_version1_payload_without_summary():
    result = _result([2.5e9], ["tdp"])
    payload = result.to_dict()
    del payload["summary"]
    payload["schema_version"] = 1
    assert RunResult.from_dict(payload) == result


# -- FleetStudy / Study.over_fleet -----------------------------------------------------


def _tiny_profile(name="tiny"):
    arrivals = DutyCycleArrivals(
        duration_s=12.0, period_s=6.0, on_fraction=0.5, load=3.0
    ).overlay(PoissonArrivals(duration_s=12.0, rate_hz=1.0))
    return FleetProfile(name=name, arrivals=arrivals, slot_s=3.0)


def test_over_fleet_runs_and_round_trips(tmp_path):
    cache = StoreCache(tmp_path / "store")
    study = Study.over_fleet(
        ("darkgates", "baseline"),
        (_tiny_profile(),),
        ensemble=3,
        tdp_levels_w=(35.0,),
        cache=cache,
        seed=5,
    )
    result = study.run()
    assert study.tasks_total == 6
    assert study.tasks_executed == 6
    assert result.ensemble == 3
    qos = result.qos("darkgates", "tiny")
    assert qos.members == 3
    assert result.qos(get_spec("darkgates", tdp_w=35.0), "tiny") == qos
    assert result.profiles() == ("tiny",)
    assert FleetStudyResult.from_json(result.to_json()) == result
    table = result.as_table()
    assert "slo_violation" in table and "darkgates@35W" in table

    # Warm re-run from the same store executes zero simulator tasks.
    warm = Study.over_fleet(
        ("darkgates", "baseline"),
        (_tiny_profile(),),
        ensemble=3,
        tdp_levels_w=(35.0,),
        cache=StoreCache(tmp_path / "store"),
        seed=5,
    )
    assert warm.run() == result
    assert warm.tasks_executed == 0
    assert warm.tasks_total == 6

    # Growing the ensemble only adds members (prefix-stable compilation):
    # the first 3 members are served from the store.
    grown = Study.over_fleet(
        ("darkgates", "baseline"),
        (_tiny_profile(),),
        ensemble=4,
        tdp_levels_w=(35.0,),
        cache=StoreCache(tmp_path / "store"),
        seed=5,
    )
    grown.run()
    assert grown.tasks_total == 8
    assert grown.tasks_executed == 2


def test_over_fleet_matches_serial_reference():
    profile = _tiny_profile()
    batched = Study.over_fleet(
        ("darkgates",), (profile,), ensemble=2, seed=3
    ).run()
    serial = Study.over_fleet(
        ("darkgates",), (profile,), ensemble=2, seed=3, executor="serial"
    ).run()
    assert batched == serial
    # And both agree with judging per-member reference runs directly.
    scenarios = ScenarioGenerator(profile).ensemble(seed=3, count=2)
    simulator = DynamicsSimulator(get_spec("darkgates").build())
    reports = [QosReport.from_result(simulator.run(s)) for s in scenarios]
    expected = aggregate_reports(
        reports, name=f"{get_spec('darkgates').label}/fleet-tiny"
    )
    assert batched.qos("darkgates", "tiny") == expected


def test_fleet_study_validation():
    with pytest.raises(ConfigurationError, match="at least one spec"):
        FleetStudy((), (_tiny_profile(),))
    with pytest.raises(ConfigurationError, match="at least one profile"):
        FleetStudy(("darkgates",), ())
    with pytest.raises(ConfigurationError, match="ensemble"):
        FleetStudy(("darkgates",), (_tiny_profile(),), ensemble=0)
    with pytest.raises(ConfigurationError, match="distinct names"):
        FleetStudy(("darkgates",), (_tiny_profile(), _tiny_profile()))
    with pytest.raises(ConfigurationError, match="unexpected keyword"):
        Study.over_fleet(("darkgates",), ("datacenter",), bogus=1)
    result = FleetStudy(("darkgates",), (_tiny_profile(),), ensemble=1).run()
    with pytest.raises(ConfigurationError, match="no cell"):
        result.qos("darkgates", "missing")
