"""Tests for the ``repro.devtools.lint`` static analyzer.

Three layers of coverage:

* per-rule fixture snippets under ``tests/lint_fixtures/`` — every rule
  fires on its bad fixture, stays silent on its good one, and can be
  silenced by a well-formed suppression;
* the import-layering contract (RPR008/RPR009) on a synthetic package
  tree with a deliberate upward import and a deliberate cycle;
* the self-check: the real repo tree is clean, which is the acceptance
  gate CI enforces with ``python -m repro lint src/repro tests``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.devtools.lint import Diagnostic, LintReport, lint_paths
from repro.devtools.lint import cli as lint_cli
from repro.devtools.lint.config import (
    DEFAULT_CONFIG,
    LintConfig,
    _parse_toml_subset,
    discover_config,
    load_config,
)
from repro.devtools.lint.diagnostics import REPORT_SCHEMA_VERSION
from repro.devtools.lint.registry import RULES, get_rule
from repro.devtools.lint.runner import gather_files
from repro.devtools.lint.suppressions import scan_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: Contract used for fixture snippets: self-contained, independent of the
#: repo's own pyproject so fixture expectations never drift with it.
FIXTURE_CONFIG = LintConfig(
    package="repro",
    fingerprint_roots=("FixtureSpec",),
    deprecated_factories=("darkgates_system",),
    factory_allowlist=("repro.core.darkgates",),
)

#: (fixture stem, rule code, findings expected on the bad fixture).
RULE_CASES = (
    ("rpr001", "RPR001", 5),
    ("rpr002", "RPR002", 5),
    ("rpr003", "RPR003", 3),
    ("rpr004", "RPR004", 3),
    ("rpr005", "RPR005", 3),
    ("rpr006", "RPR006", 1),
    ("rpr007", "RPR007", 1),
)


def lint_fixture(name: str) -> LintReport:
    return lint_paths(
        [FIXTURES / name],
        config=FIXTURE_CONFIG,
        scope="library",
        relative_to=FIXTURES,
    )


# -- per-rule fixtures ------------------------------------------------------------------


@pytest.mark.parametrize("stem,code,count", RULE_CASES)
def test_rule_fires_on_bad_fixture(stem, code, count):
    report = lint_fixture(f"{stem}_bad.py")
    assert [d.code for d in report.diagnostics] == [code] * count
    assert all(d.line > 0 for d in report.diagnostics)


@pytest.mark.parametrize("stem,code,count", RULE_CASES)
def test_rule_silent_on_good_fixture(stem, code, count):
    report = lint_fixture(f"{stem}_good.py")
    assert report.clean, report.format_text()


@pytest.mark.parametrize("stem,code,count", RULE_CASES)
def test_rule_suppression_silences_bad_fixture(stem, code, count, tmp_path):
    """Appending a suppression to every flagged line yields a clean run."""
    report = lint_fixture(f"{stem}_bad.py")
    lines = (FIXTURES / f"{stem}_bad.py").read_text().splitlines()
    for diagnostic in report.diagnostics:
        suffix = f"  # repro-lint: disable={code} -- fixture suppression test"
        if "repro-lint" not in lines[diagnostic.line - 1]:
            lines[diagnostic.line - 1] += suffix
    target = tmp_path / f"{stem}_suppressed.py"
    target.write_text("\n".join(lines) + "\n")
    suppressed = lint_paths([target], config=FIXTURE_CONFIG, scope="library")
    assert suppressed.clean, suppressed.format_text()


# -- suppression hygiene ----------------------------------------------------------------


def test_consumed_suppression_is_silent():
    assert lint_fixture("suppressed_ok.py").clean


def test_suppression_hygiene_findings():
    report = lint_fixture("suppressed_bad.py")
    assert [d.code for d in report.diagnostics] == ["RPR000"] * 3
    messages = "\n".join(d.message for d in report.diagnostics)
    assert "missing its rationale" in messages
    assert "unknown rule code 'RPR999'" in messages
    assert "unused suppression" in messages


def test_rpr000_is_never_suppressible(tmp_path):
    source = tmp_path / "snippet.py"
    source.write_text(
        "x = 1  # repro-lint: disable=RPR000 -- trying to silence the police\n"
    )
    report = lint_paths([source], config=FIXTURE_CONFIG, scope="library")
    assert [d.code for d in report.diagnostics] == ["RPR000"]
    assert "cannot be suppressed" in report.diagnostics[0].message


def test_marker_inside_string_literal_is_not_a_directive():
    source = 's = "# repro-lint: disable=RPR005 -- not a comment"\n'
    suppressions = scan_suppressions(source)
    assert not suppressions.active
    assert not suppressions.problems


def test_unparsable_file_reports_rpr000(tmp_path):
    source = tmp_path / "broken.py"
    source.write_text("def broken(:\n")
    report = lint_paths([source], config=FIXTURE_CONFIG, scope="library")
    assert [d.code for d in report.diagnostics] == ["RPR000"]
    assert "cannot parse file" in report.diagnostics[0].message


# -- layering contract ------------------------------------------------------------------


LAYERED_PYPROJECT = """\
[tool.repro-lint]
package = "fake"
layers = [
    ["base"],
    ["mid"],
    ["top"],
]
"""


@pytest.fixture()
def layered_tree(tmp_path):
    """A synthetic package with one upward import, one cycle, one stray
    package, one bare-root import, and exempt TYPE_CHECKING/deferred
    imports."""
    (tmp_path / "pyproject.toml").write_text(LAYERED_PYPROJECT)
    package = tmp_path / "src" / "fake"
    files = {
        "__init__.py": "from fake.base.util import helper\n",
        "base/__init__.py": "",
        "base/util.py": (
            "from fake.top.widget import Widget\n"
            "def helper():\n"
            "    return Widget\n"
        ),
        "base/typed.py": (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from fake.top.widget import Widget\n"
        ),
        "base/deferred.py": (
            "def lazily():\n"
            "    from fake.top.widget import Widget\n"
            "    return Widget\n"
        ),
        "mid/__init__.py": "",
        "mid/a.py": (
            "import fake\n"
            "from .b import helper_b\n"
            "def helper_a():\n"
            "    return helper_b\n"
        ),
        "mid/b.py": (
            "from fake.mid.a import helper_a\n"
            "def helper_b():\n"
            "    return helper_a\n"
        ),
        "top/__init__.py": "",
        "top/widget.py": "class Widget:\n    pass\n",
        "stray/__init__.py": "",
    }
    for relative, text in files.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return tmp_path


def test_layering_contract_findings(layered_tree):
    report = lint_paths(
        [layered_tree / "src" / "fake"], relative_to=layered_tree
    )
    by_code = {}
    for diagnostic in report.diagnostics:
        by_code.setdefault(diagnostic.code, []).append(diagnostic)
    # One upward import, one bare-root import, one unassigned package.
    assert len(by_code["RPR008"]) == 3
    messages = "\n".join(d.message for d in by_code["RPR008"])
    assert "declared order is base -> mid -> top" in messages
    assert "imports the package root 'fake'" in messages
    assert "package 'stray' is not assigned a layer" in messages
    # The a <-> b cycle is reported on both members.
    assert len(by_code["RPR009"]) == 2
    assert all(
        "fake.mid.a -> fake.mid.b -> fake.mid.a" in d.message
        for d in by_code["RPR009"]
    )
    # TYPE_CHECKING-gated and function-deferred imports are exempt.
    flagged = {d.path for d in report.diagnostics}
    assert not any("typed.py" in path for path in flagged)
    assert not any("deferred.py" in path for path in flagged)
    # The package-root facade may re-export across layers.
    assert not any(path.endswith("fake/__init__.py") for path in flagged)


def test_layering_clean_when_order_respected(layered_tree):
    package = layered_tree / "src" / "fake"
    (package / "base" / "util.py").write_text("def helper():\n    return 1\n")
    (package / "mid" / "a.py").write_text(
        "from .b import helper_b\ndef helper_a():\n    return helper_b\n"
    )
    (package / "mid" / "b.py").write_text("def helper_b():\n    return 2\n")
    (package / "top" / "widget.py").write_text(
        "from fake.base.util import helper\nclass Widget:\n    pass\n"
    )
    import shutil

    shutil.rmtree(package / "stray")
    report = lint_paths([package])
    assert report.clean, report.format_text()


# -- configuration ----------------------------------------------------------------------


def test_toml_fallback_matches_tomllib_on_repo_contract():
    text = (REPO_ROOT / "pyproject.toml").read_text()
    table = _parse_toml_subset(text)
    assert table["package"] == "repro"
    assert table["layers"][0] == ["common"]
    tomllib = pytest.importorskip("tomllib")
    assert table == tomllib.loads(text)["tool"]["repro-lint"]


def test_repo_contract_loads(tmp_path):
    config = load_config(REPO_ROOT / "pyproject.toml")
    assert config.package == "repro"
    assert config.layers[0] == ("common",)
    assert config.layer_of("common") == 0
    assert config.layer_of("store") == len(config.layers) - 1
    assert config.layer_of("unheard-of") is None
    assert "lint_fixtures" in config.exclude
    assert "common" in config.layer_order_text()


def test_config_rejects_duplicate_layer_assignment(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.repro-lint]\npackage = "p"\nlayers = [["a"], ["a"]]\n'
    )
    with pytest.raises(ConfigurationError, match="appears in both"):
        load_config(pyproject)


def test_config_rejects_non_string_arrays(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.repro-lint]\nlayers = [[1]]\n")
    with pytest.raises(ConfigurationError, match="array of strings"):
        load_config(pyproject)


def test_missing_pyproject_raises():
    with pytest.raises(ConfigurationError, match="no pyproject.toml"):
        load_config(REPO_ROOT / "nope" / "pyproject.toml")


def test_discover_config_falls_back_to_default(tmp_path):
    assert discover_config(tmp_path) == DEFAULT_CONFIG


# -- registry ---------------------------------------------------------------------------


def test_registry_codes_are_stable():
    assert sorted(RULES) == [f"RPR{i:03d}" for i in range(10)]
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.summary
        assert rule.explanation
        assert rule.scopes <= {"library", "tests"}


def test_get_rule_normalizes_and_rejects():
    assert get_rule(" rpr001 ").code == "RPR001"
    with pytest.raises(ConfigurationError, match="unknown rule code"):
        get_rule("RPR999")


def test_tests_scope_keeps_seed_rules_only():
    report = lint_paths(
        [FIXTURES / "rpr001_bad.py"], config=FIXTURE_CONFIG, scope="tests"
    )
    assert [d.code for d in report.diagnostics] == ["RPR001"] * 5
    # Library-only rules stay quiet on test files.
    assert lint_paths(
        [FIXTURES / "rpr005_bad.py"], config=FIXTURE_CONFIG, scope="tests"
    ).clean


# -- CLI --------------------------------------------------------------------------------


def test_cli_explain_and_list_rules(capsys):
    assert lint_cli.main(["--explain", "RPR003"]) == 0
    out = capsys.readouterr().out
    assert "RPR003" in out
    assert "sort_keys=True" in out
    assert lint_cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_cli_explain_unknown_code_exits_2(capsys):
    assert lint_cli.main(["--explain", "RPR999"]) == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_missing_path_exits_2(capsys):
    assert lint_cli.main([str(FIXTURES / "no_such_file.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_findings_exit_1_with_json_report(tmp_path, capsys):
    report_path = tmp_path / "artifacts" / "lint-report.json"
    code = lint_cli.main(
        [
            str(FIXTURES / "rpr005_bad.py"),
            "--scope",
            "library",
            "--format",
            "json",
            "--json-report",
            str(report_path),
        ]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == REPORT_SCHEMA_VERSION
    assert payload["finding_count"] == 3
    assert {d["code"] for d in payload["diagnostics"]} == {"RPR005"}
    assert json.loads(report_path.read_text()) == payload


def test_cli_clean_run_exits_0(capsys):
    code = lint_cli.main([str(FIXTURES / "rpr005_good.py"), "--scope", "library"])
    assert code == 0
    assert "clean: 1 file, 0 findings" in capsys.readouterr().out


def test_cli_via_repro_entry_point(capsys):
    from repro.store.cli import main as repro_main

    code = repro_main(
        ["lint", str(FIXTURES / "rpr003_bad.py"), "--scope", "library"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "RPR003" in out


# -- diagnostics ------------------------------------------------------------------------


def test_diagnostic_format_and_ordering():
    first = Diagnostic("a.py", 3, 0, "RPR001", "m")
    second = Diagnostic("a.py", 10, 2, "RPR005", "n")
    assert first.format() == "a.py:3:0: RPR001 m"
    assert sorted([second, first]) == [first, second]
    report = LintReport(diagnostics=(first, second), files_scanned=1)
    assert not report.clean
    assert report.format_text().endswith("2 finding(s) in 1 file")


# -- the repo's own tree ----------------------------------------------------------------


def test_repo_tree_is_clean():
    """Acceptance gate: the shipped tree and test suite lint clean."""
    report = lint_paths(
        [REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"],
        relative_to=REPO_ROOT,
    )
    assert report.clean, report.format_text()
    assert report.files_scanned > 100


def test_fixture_corpus_is_excluded_from_tree_scans():
    config = load_config(REPO_ROOT / "pyproject.toml")
    files = gather_files([REPO_ROOT / "tests"], exclude=config.exclude)
    assert files, "tests directory should contain Python files"
    assert not any("lint_fixtures" in file.parts for file in files)
    # Direct file arguments bypass the exclusion.
    direct = gather_files([FIXTURES / "rpr001_bad.py"], exclude=config.exclude)
    assert len(direct) == 1
