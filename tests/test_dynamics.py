"""Tests for the closed-loop Pcode dynamics engine and its workload API."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.core.spec import build_engine, get_spec
from repro.pmu.cstates import PackageCState, cstate_for_idle_duration
from repro.pmu.dvfs import CpuDemand, LimitingFactor
from repro.pmu.turbo import TurboBudgetManager
from repro.power.budget import EwmaPowerMeter, TurboLimits
from repro.power.thermal import ThermalLimits, ThermalModel, TransientThermalModel
from repro.sim.dynamics import DynamicsSimulator
from repro.sim.metrics import DynamicRunResult, RunResult
from repro.analysis.study import Study
from repro.workloads.dynamics import (
    DynamicPhase,
    DynamicScenario,
    burst_scenario,
    sprint_and_rest_scenario,
    sustained_scenario,
)
from repro.workloads.energy import energy_star_scenario, rmt_scenario

#: Fast-converging run configuration shared by the closed-loop tests: a small
#: thermal capacitance keeps the thermal time constant a few seconds, so a
#: two-minute scenario settles well within the 0.1 degC parity tolerance.
FAST_THERMAL = dict(thermal_capacitance_j_per_c=5.0, time_step_s=0.1)


def _engine(spec_name: str, tdp_w: float):
    return build_engine(get_spec(spec_name, tdp_w=tdp_w))


# -- turbo limits and EWMA accounting --------------------------------------------------


def test_turbo_limits_from_tdp():
    limits = TurboLimits.from_tdp(35.0, pl2_ratio=1.25, tau_s=8.0)
    assert limits.pl1_w == pytest.approx(35.0)
    assert limits.pl2_w == pytest.approx(43.75)
    assert limits.tau_s == pytest.approx(8.0)


def test_turbo_limits_reject_pl2_below_pl1():
    with pytest.raises(ConfigurationError):
        TurboLimits(pl1_w=45.0, pl2_w=35.0)
    with pytest.raises(ConfigurationError):
        TurboLimits.from_tdp(45.0, pl2_ratio=0.9)


def test_ewma_meter_converges_to_constant_power():
    meter = EwmaPowerMeter(tau_s=2.0)
    for _ in range(400):
        meter.update(40.0, 0.1)
    assert meter.average_w == pytest.approx(40.0, abs=1e-6)


def test_ewma_meter_budget_inverts_update():
    meter = EwmaPowerMeter(tau_s=5.0, initial_average_w=20.0)
    budget = meter.max_power_keeping_average_w(35.0, 0.1)
    meter.update(budget, 0.1)
    assert meter.average_w == pytest.approx(35.0)


def test_ewma_meter_budget_never_negative():
    meter = EwmaPowerMeter(tau_s=5.0, initial_average_w=100.0)
    assert meter.max_power_keeping_average_w(35.0, 0.1) == 0.0


def test_turbo_budget_manager_bursts_then_squeezes_to_pl1():
    limits = TurboLimits.from_tdp(35.0, pl2_ratio=1.25, tau_s=2.0)
    manager = TurboBudgetManager(limits)
    assert manager.power_budget_w(0.1) == pytest.approx(limits.pl2_w)
    for _ in range(600):
        manager.account(min(limits.pl2_w, manager.power_budget_w(0.1)), 0.1)
    assert manager.average_power_w <= limits.pl1_w + 1e-9
    assert manager.power_budget_w(0.1) == pytest.approx(limits.pl1_w, rel=1e-3)


# -- transient thermal model -----------------------------------------------------------


def test_transient_thermal_step_relaxes_to_steady_state():
    model = TransientThermalModel(
        ThermalModel(ThermalLimits(tdp_w=35.0)), capacitance_j_per_c=5.0
    )
    temperature = model.limits.ambient_c
    for _ in range(int(20 * model.time_constant_s / 0.1)):
        temperature = model.step(temperature, 35.0, 0.1)
    assert temperature == pytest.approx(model.limits.tjmax_c, abs=1e-6)


def test_transient_thermal_cap_inverts_step():
    model = TransientThermalModel(
        ThermalModel(ThermalLimits(tdp_w=35.0)), capacitance_j_per_c=5.0
    )
    cap = model.max_power_keeping_tjmax_w(90.0, 0.5)
    assert model.step(90.0, cap, 0.5) == pytest.approx(model.limits.tjmax_c)


def test_transient_thermal_time_constant_scales_with_capacitance():
    base = ThermalModel(ThermalLimits(tdp_w=35.0))
    small = TransientThermalModel(base, capacitance_j_per_c=5.0)
    large = TransientThermalModel(base, capacitance_j_per_c=50.0)
    assert large.time_constant_s == pytest.approx(10 * small.time_constant_s)


# -- scenario descriptors --------------------------------------------------------------


def test_dynamic_phase_validation():
    with pytest.raises(ConfigurationError):
        DynamicPhase(name="", duration_s=1.0)
    with pytest.raises(ConfigurationError):
        DynamicPhase(name="p", duration_s=0.0)
    with pytest.raises(ConfigurationError):
        DynamicPhase(name="p", duration_s=1.0, active_cores=-1)


def test_idle_phase_has_no_demand():
    phase = DynamicPhase(name="gap", duration_s=1.0)
    assert phase.is_idle
    with pytest.raises(ConfigurationError):
        phase.demand()


def test_scenario_duration_and_hashability():
    scenario = sprint_and_rest_scenario(sprint_s=10.0, rest_s=5.0, cycles=2)
    assert scenario.duration_s == pytest.approx(30.0)
    assert hash(scenario) == hash(
        sprint_and_rest_scenario(sprint_s=10.0, rest_s=5.0, cycles=2)
    )


def test_from_energy_scenario_unrolls_residency_mix():
    energy = rmt_scenario()
    dynamic = DynamicScenario.from_energy_scenario(energy, total_duration_s=100.0)
    assert dynamic.name == energy.name
    assert dynamic.duration_s == pytest.approx(100.0)
    active = [p for p in dynamic.phases if not p.is_idle]
    idle = [p for p in dynamic.phases if p.is_idle]
    assert active and idle


def test_from_energy_scenario_maps_sleep_and_off_to_deepest_idle():
    dynamic = DynamicScenario.from_energy_scenario(
        energy_star_scenario(), total_duration_s=100.0
    )
    assert all(phase.is_idle for phase in dynamic.phases)
    off = next(p for p in dynamic.phases if p.name == "off")
    assert off.package_cstate == "deepest"


# -- closed-loop engine: steady-state parity (acceptance criterion) --------------------


@pytest.mark.parametrize("tdp_w", [35.0, 45.0, 65.0, 91.0])
@pytest.mark.parametrize("spec_name", ["darkgates", "baseline"])
def test_sustained_scenario_converges_to_static_operating_point(spec_name, tdp_w):
    engine = _engine(spec_name, tdp_w)
    static = engine.pcode.resolve_cpu_operating_point(CpuDemand(active_cores=4))
    result = engine.run(sustained_scenario(duration_s=120.0, **FAST_THERMAL))
    # Frequency: exact on the 100 MHz grid.
    assert result.sustained_frequency_hz == pytest.approx(
        static.frequency_hz, abs=1e-3
    )
    assert result.frequencies_hz[-1] == pytest.approx(static.frequency_hz, abs=1e-3)
    # Temperature: within 0.1 degC of the lumped-model fixed point of the
    # converged sustained power.
    fixed_point = engine.pcode.processor.thermal_model().junction_temperature_c(
        result.package_powers_w[-1]
    )
    assert result.final_temperature_c == pytest.approx(fixed_point, abs=0.1)
    # Limiting factor converges to the static verdict.
    assert result.final_limiting_factor == static.limiting_factor.value


def test_junction_never_exceeds_tjmax():
    engine = _engine("baseline", 35.0)
    result = engine.run(
        burst_scenario(idle_lead_s=5.0, burst_s=60.0, pl2_ratio=1.6, **FAST_THERMAL)
    )
    assert result.peak_temperature_c <= engine.pcode.processor.tjmax_c + 1e-6


# -- closed-loop engine: throttling behaviour (acceptance criterion) -------------------


def test_burst_throttles_from_pl2_to_sustained_at_35w():
    engine = _engine("baseline", 35.0)
    static = engine.pcode.resolve_cpu_operating_point(CpuDemand(active_cores=4))
    result = engine.run(burst_scenario(idle_lead_s=20.0, burst_s=100.0, **FAST_THERMAL))
    assert result.throttled
    assert result.peak_frequency_hz > static.frequency_hz + 1e6
    assert result.sustained_frequency_hz == pytest.approx(
        static.frequency_hz, abs=1e-3
    )
    # The limiting factor of the decayed tail is the TDP.
    assert result.final_limiting_factor == LimitingFactor.TDP.value


def test_same_burst_stays_vmax_limited_at_91w():
    engine = _engine("baseline", 91.0)
    result = engine.run(burst_scenario(idle_lead_s=20.0, burst_s=100.0, **FAST_THERMAL))
    assert not result.throttled
    active_limits = {
        result.limiting_factors[i]
        for i, f in enumerate(result.frequencies_hz)
        if f > 0.0
    }
    assert active_limits == {LimitingFactor.VMAX.value}


def test_burst_frequency_trace_decays_monotonically_at_35w():
    engine = _engine("darkgates", 35.0)
    result = engine.run(burst_scenario(idle_lead_s=20.0, burst_s=100.0, **FAST_THERMAL))
    active = [f for f in result.frequencies_hz if f > 0.0]
    # The burst opens at the peak and never climbs again while throttling.
    assert active[0] == result.peak_frequency_hz
    assert all(b <= a + 1e-6 for a, b in zip(active, active[1:]))


def test_sprint_and_rest_rebanks_turbo_budget_each_cycle():
    engine = _engine("baseline", 35.0)
    static = engine.pcode.resolve_cpu_operating_point(CpuDemand(active_cores=4))
    result = engine.run(
        sprint_and_rest_scenario(
            sprint_s=30.0, rest_s=40.0, cycles=3, **FAST_THERMAL
        )
    )
    cycle_s = 70.0
    for cycle in range(3):
        sprint_peak = max(
            f
            for t, f in zip(result.times_s, result.frequencies_hz)
            if cycle * cycle_s < t <= cycle * cycle_s + 30.0
        )
        assert sprint_peak > static.frequency_hz + 1e6


# -- closed-loop engine: C-state entry -------------------------------------------------


def test_idle_gaps_enter_the_fused_deepest_state():
    scenario = burst_scenario(idle_lead_s=10.0, burst_s=10.0, **FAST_THERMAL)
    darkgates = _engine("darkgates", 91.0).run(scenario)
    baseline = _engine("baseline", 91.0).run(scenario)
    assert "C8" in darkgates.cstate_residency()
    assert "C7" in baseline.cstate_residency()
    assert "C0" in darkgates.cstate_residency()


def test_auto_cstate_follows_break_even_ladder():
    engine = _engine("darkgates", 91.0)
    short_gap = DynamicScenario(
        name="short_gap",
        phases=(DynamicPhase(name="gap", duration_s=0.001),),
        time_step_s=0.001,
    )
    result = engine.run(short_gap)
    expected = cstate_for_idle_duration(0.001, PackageCState.C8)
    assert result.package_cstates[0] == expected.value
    assert expected.depth < PackageCState.C8.depth


def test_pinned_cstate_is_clamped_to_platform_deepest():
    engine = _engine("baseline", 91.0)  # fused deepest is C7
    scenario = DynamicScenario(
        name="pinned",
        phases=(
            DynamicPhase(name="gap", duration_s=1.0, package_cstate="C10"),
        ),
        time_step_s=0.5,
    )
    result = engine.run(scenario)
    assert set(result.package_cstates) == {"C7"}


def test_pinning_c0_on_idle_phase_is_rejected():
    engine = _engine("baseline", 91.0)
    scenario = DynamicScenario(
        name="bad",
        phases=(DynamicPhase(name="gap", duration_s=1.0, package_cstate="C0"),),
    )
    with pytest.raises(ConfigurationError):
        engine.run(scenario)


def test_idle_power_rebanks_and_cools():
    engine = _engine("baseline", 35.0)
    result = engine.run(
        DynamicScenario(
            name="cooldown",
            phases=(
                DynamicPhase(name="work", duration_s=40.0, active_cores=4),
                DynamicPhase(name="rest", duration_s=40.0),
            ),
            **FAST_THERMAL,
        )
    )
    assert result.temperatures_c[-1] < result.peak_temperature_c - 10.0
    assert result.average_powers_w[-1] < result.pl1_w / 2.0


# -- result type -----------------------------------------------------------------------


def test_dynamic_result_json_round_trip():
    engine = _engine("darkgates", 35.0)
    result = engine.run(burst_scenario(idle_lead_s=5.0, burst_s=20.0, **FAST_THERMAL))
    payload = json.loads(json.dumps(result.to_dict()))
    rebuilt = RunResult.from_dict(payload)
    assert isinstance(rebuilt, DynamicRunResult)
    assert rebuilt == result
    assert rebuilt.primary_metric == pytest.approx(result.primary_metric)


def test_dynamic_result_rejects_ragged_traces():
    with pytest.raises(ConfigurationError):
        DynamicRunResult(
            scenario_name="bad",
            time_step_s=0.1,
            pl1_w=35.0,
            pl2_w=43.75,
            times_s=(0.1, 0.2),
            frequencies_hz=(1e9,),
            package_powers_w=(10.0,),
            temperatures_c=(40.0,),
            average_powers_w=(10.0,),
            limiting_factors=("tdp",),
            package_cstates=("C0",),
        )


def test_engine_run_dispatches_dynamic_scenarios():
    engine = _engine("darkgates", 35.0)
    scenario = sustained_scenario(duration_s=2.0, **FAST_THERMAL)
    result = engine.run(scenario)
    assert isinstance(result, DynamicRunResult)
    assert result.workload_name == scenario.name


# -- study sweep -----------------------------------------------------------------------


def test_study_over_dynamics_sweeps_specs_and_tdp_levels():
    scenario = burst_scenario(idle_lead_s=5.0, burst_s=30.0, **FAST_THERMAL)
    study = Study.over_dynamics(
        ("darkgates", "baseline"),
        (scenario,),
        tdp_levels_w=(35.0, 91.0),
        name="dynamics_sweep",
    )
    assert len(study) == 4
    grid = study.run()
    low = grid.get(get_spec("baseline", tdp_w=35.0), scenario.name, suite="dynamics")
    high = grid.get(get_spec("baseline", tdp_w=91.0), scenario.name, suite="dynamics")
    assert low.throttled and not high.throttled
    assert high.sustained_frequency_hz > low.sustained_frequency_hz
    # The completed grid round-trips through JSON with typed results.
    rebuilt = type(grid).from_json(grid.to_json())
    cell = rebuilt.get(
        get_spec("baseline", tdp_w=35.0), scenario.name, suite="dynamics"
    )
    assert isinstance(cell, DynamicRunResult)
    assert cell == low


def test_study_over_dynamics_caches_cells():
    scenario = sustained_scenario(duration_s=2.0, **FAST_THERMAL)
    cache = {}
    study = Study.over_dynamics(
        ("darkgates",), (scenario,), tdp_levels_w=(35.0,), cache=cache
    )
    study.run()
    executed = study.tasks_executed
    study.run()
    assert study.tasks_executed == executed


# -- simulator object ------------------------------------------------------------------


def test_dynamics_simulator_reusable_across_scenarios():
    simulator = DynamicsSimulator(_engine("darkgates", 45.0).pcode)
    first = simulator.run(sustained_scenario(duration_s=2.0, **FAST_THERMAL))
    second = simulator.run(burst_scenario(idle_lead_s=1.0, burst_s=2.0, **FAST_THERMAL))
    assert first.scenario_name == "sustained"
    assert second.scenario_name == "burst"
