"""Unit tests for the reliability substrate (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.reliability.aging import AgingModel, StressProfile
from repro.reliability.electromigration import BumpCurrentModel
from repro.reliability.guardband import ReliabilityGuardbandModel


# -- aging model -----------------------------------------------------------------------------


def test_aging_rate_is_one_at_reference():
    model = AgingModel()
    assert model.relative_rate(model.reference_voltage_v, model.reference_temperature_c) == pytest.approx(1.0)


def test_aging_rate_increases_with_voltage_and_temperature():
    model = AgingModel()
    assert model.relative_rate(1.05, 70.0) > 1.0
    assert model.relative_rate(1.0, 85.0) > 1.0


def test_aging_lifetime_consumption_scales_with_powered_fraction():
    model = AgingModel()
    half = StressProfile(0.5, 1.0, 70.0)
    full = StressProfile(1.0, 1.0, 70.0)
    assert model.lifetime_consumption(full) == pytest.approx(
        2 * model.lifetime_consumption(half)
    )


def test_aging_derating_zero_when_candidate_not_worse():
    model = AgingModel()
    baseline = StressProfile(1.0, 1.0, 70.0)
    candidate = StressProfile(0.5, 1.0, 70.0)
    assert model.voltage_derating_for_equal_lifetime(baseline, candidate) == 0.0


def test_aging_derating_positive_when_candidate_worse():
    model = AgingModel()
    baseline = StressProfile(0.6, 1.0, 70.0)
    candidate = StressProfile(1.0, 1.0, 75.0)
    derating = model.voltage_derating_for_equal_lifetime(baseline, candidate)
    assert 0.0 < derating < 0.05


def test_aging_derating_restores_lifetime():
    model = AgingModel()
    baseline = StressProfile(0.6, 1.05, 70.0)
    candidate = StressProfile(1.0, 1.05, 75.0)
    derating = model.voltage_derating_for_equal_lifetime(baseline, candidate)
    compensated = StressProfile(1.0, 1.05 - derating, 75.0)
    assert model.lifetime_consumption(compensated) == pytest.approx(
        model.lifetime_consumption(baseline), rel=1e-6
    )


def test_stress_profile_validation():
    with pytest.raises(ConfigurationError):
        StressProfile(1.5, 1.0, 70.0)


# -- reliability guardband --------------------------------------------------------------------------


def test_reliability_guardband_matches_paper_magnitudes():
    model = ReliabilityGuardbandModel()
    high = model.guardband_for_high_tdp_desktop()
    low = model.guardband_for_low_tdp_desktop()
    # Paper Section 4.2: < 5 mV at 91 W, < 20 mV at 35 W.
    assert 0.0 < high <= 0.008
    assert 0.0 < low <= 0.020
    assert low > high


def test_reliability_guardband_zero_when_already_always_powered():
    model = ReliabilityGuardbandModel(bypass_temperature_rise_c=0.0)
    assert model.guardband_v(91.0, baseline_powered_fraction=1.0, average_temperature_c=70.0) == 0.0


def test_reliability_guardband_grows_with_temperature_rise():
    cool = ReliabilityGuardbandModel(bypass_temperature_rise_c=2.0)
    hot = ReliabilityGuardbandModel(bypass_temperature_rise_c=8.0)
    args = dict(tdp_w=65.0, baseline_powered_fraction=0.7, average_temperature_c=70.0)
    assert hot.guardband_v(**args) > cool.guardband_v(**args)


def test_reliability_guardband_validates_fraction():
    model = ReliabilityGuardbandModel()
    with pytest.raises(ConfigurationError):
        model.guardband_v(65.0, baseline_powered_fraction=1.5, average_temperature_c=70.0)


# -- electromigration ---------------------------------------------------------------------------------


def test_bypass_improves_em_margin():
    # Section 4.2: sharing all bumps between cores alleviates EM.
    model = BumpCurrentModel()
    assert model.bypass_improves_margin(core_current_a=30.0)


def test_per_bump_current_lower_when_bypassed():
    model = BumpCurrentModel()
    gated = model.per_bump_current_gated_a(30.0)
    bypassed = model.per_bump_current_bypassed_a(30.0, core_count=4, active_cores=4)
    assert bypassed < gated


def test_em_margin_above_one_for_typical_currents():
    model = BumpCurrentModel()
    assert model.em_margin_gated(25.0) > 1.0
    assert model.em_margin_bypassed(25.0) > 1.0


def test_bump_model_validation():
    model = BumpCurrentModel()
    with pytest.raises(ConfigurationError):
        model.per_bump_current_bypassed_a(30.0, core_count=4, active_cores=5)
    with pytest.raises(ConfigurationError):
        BumpCurrentModel(bumps_per_core_domain=0)
